"""Spool files: the APT intermediate files.

A *spool* is written strictly sequentially (append) and then read
sequentially either **forward or backward** — the whole §II evaluation
paradigm rests on reading the previous pass's output file backwards.
:class:`DiskSpool` keeps records on real secondary storage;
:class:`MemorySpool` is the fast equivalent for tests.  Both charge
every transfer to an :class:`~repro.util.iotrack.IOAccountant`.

Durable format v2
-----------------

Real secondary storage fails — torn writes, truncation, bit rot — so
the on-disk format carries integrity metadata end to end::

    header   "APTSPL2\\n" magic + u16 version + u16 flags       (12 B)
    record   <u32 len> <u32 crc32> <blob> <u32 crc32> <u32 len> (16 B + blob)
    ...
    footer   "APTSEAL\\n" magic + u64 n_records + u64 data_bytes
             + u32 stream_crc + u32 footer_crc                  (32 B)

The record framing is *mirrored* (length outermost, checksum inner on
both sides) so a backward reader hops record-to-record with two seeks
and still cross-checks the leading words against the trailing ones.
The footer seals the file: record count, payload byte count, a running
CRC32 over every blob in write order, and a CRC32 of the footer itself.
``finalize()`` is atomic — records stream into ``<path>.tmp``, the
footer is written, the file is flushed + fsync'ed, and only then
renamed over ``<path>`` — so a finalized spool is either completely
present or absent, never half-sealed.

Legacy **v1** files (bare ``<u32 len> blob <u32 len>`` framing, no
header/footer/checksums) remain readable: the readers sniff the magic
and fall back to the v1 framing walk, now with the leading/trailing
length cross-check the original backward reader skipped.

Compact format v3 (the default)
-------------------------------

v2 pays ``pickle.dumps`` plus 16 framing bytes and a CRC32 *per
record* — on a million-node APT that is a million checksum and write
calls per pass.  Format v3 attacks both costs::

    header   "APTSPL3\\n" magic + u16 version + u16 flags       (12 B)
    block    <u32 payload_len> <u32 n_records> <u32 crc32>
             payload := ( <u32 rec_len> record-bytes )*
             <u32 crc32> <u32 n_records> <u32 payload_len>      (24 B + payload)
    ...
    names    <u32 nt_len> <u32 nt_crc32> name-table payload      (8 B + payload)
    footer   "APTSEL3\\n" magic + u64 n_records + u64 data_bytes
             + u64 n_blocks + u64 nt_offset + u32 nt_bytes
             + u32 stream_crc + u32 footer_crc                  (52 B)

Records are encoded by the struct-packed
:class:`~repro.apt.codec.RecordCodec` (symbol/attribute names become
name-table ids on disk) and framed into ~32 KiB *blocks* with **one**
CRC32 per block — checksum and write-call overhead amortize across
every record in the block, while the mirrored block frame keeps the
two-seek backward hop of v2 (a backward reader decodes one block at a
time, so memory stays bounded by the block size, not the file).  The
name table is sealed into its own checksummed section before the
footer.  ``finalize()`` keeps the v2 atomic tmp+fsync+rename
discipline, and v1/v2 files remain fully readable and salvageable —
the readers sniff the magic.

Every integrity failure raises :class:`~repro.errors.SpoolCorruptionError`
naming the 0-based record index and byte offset (block-framed spools
also carry the block index and block-relative offset);
:func:`scan_spool` and :func:`salvage_spool` give ``repro fsck`` a
non-raising sweep and a longest-valid-prefix recovery path for all
three formats.

:class:`AdaptiveSpool` (the default evaluation spool since pass
fusion) keeps small APTs entirely in memory — raw records, no
serialization at all — and transparently spills to a sealed v3
:class:`DiskSpool` past a configurable byte budget, preserving the
paper's bounded-memory guarantee while letting small inputs skip the
filesystem entirely.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.apt.codec import (
    RecordAddress,
    RecordCodec,
    deserialize_names,
    serialize_names,
)
from repro.errors import EvaluationError, SpoolCorruptionError
from repro.util import atomic_write as _aw
from repro.util.iotrack import IOAccountant

_LEN = struct.Struct("<I")

#: v2 file header: magic, format version, flags (reserved).
MAGIC = b"APTSPL2\n"
#: v3 file header magic (same header struct as v2).
MAGIC_V3 = b"APTSPL3\n"
_HEADER = struct.Struct("<8sHH")
#: v2 record head (length, crc32) and mirrored tail (crc32, length).
_REC_HEAD = struct.Struct("<II")
_REC_TAIL = struct.Struct("<II")
#: v2 sealed footer: magic, n_records, data_bytes, stream crc, footer crc.
FOOTER_MAGIC = b"APTSEAL\n"
_FOOTER = struct.Struct("<8sQQII")
#: v3 block head (payload_len, n_records, crc32) and mirrored tail
#: (crc32, n_records, payload_len).
_BLOCK_HEAD = struct.Struct("<III")
_BLOCK_TAIL = struct.Struct("<III")
#: v3 name-table section head: payload length, payload crc32.
_NT_HEAD = struct.Struct("<II")
#: v3 sealed footer: magic, n_records, data_bytes, n_blocks, nt_offset,
#: nt_bytes, stream crc, footer crc.
FOOTER_MAGIC_V3 = b"APTSEL3\n"
_FOOTER3 = struct.Struct("<8sQQQQIII")

FORMAT_V1 = 1
FORMAT_V2 = 2
FORMAT_V3 = 3

#: Target (uncompressed) payload bytes per v3 block: one CRC32 and two
#: write calls amortize across every record that fits.
DEFAULT_BLOCK_SIZE = 32 * 1024

#: Per-record framing overhead in bytes, by format version (v3 charges
#: only the in-block length prefix per record; block framing is
#: per-*block* and amortized).
RECORD_OVERHEAD = {FORMAT_V1: 2 * _LEN.size,
                   FORMAT_V2: _REC_HEAD.size + _REC_TAIL.size,
                   FORMAT_V3: _LEN.size}

#: v3 per-block framing overhead (mirrored head + tail).
BLOCK_OVERHEAD = _BLOCK_HEAD.size + _BLOCK_TAIL.size


def _footer_bytes(n_records: int, data_bytes: int, stream_crc: int) -> bytes:
    body = _FOOTER.pack(FOOTER_MAGIC, n_records, data_bytes, stream_crc, 0)
    crc = zlib.crc32(body[: _FOOTER.size - 4])
    return body[: _FOOTER.size - 4] + _LEN.pack(crc)


def _footer3_bytes(
    n_records: int, data_bytes: int, n_blocks: int,
    nt_offset: int, nt_bytes: int, stream_crc: int,
) -> bytes:
    body = _FOOTER3.pack(
        FOOTER_MAGIC_V3, n_records, data_bytes, n_blocks,
        nt_offset, nt_bytes, stream_crc, 0,
    )
    crc = zlib.crc32(body[: _FOOTER3.size - 4])
    return body[: _FOOTER3.size - 4] + _LEN.pack(crc)


@dataclass
class SpoolFooter:
    """Decoded v2 footer."""

    n_records: int
    data_bytes: int
    stream_crc: int


@dataclass
class SpoolFooterV3:
    """Decoded v3 footer."""

    n_records: int
    data_bytes: int
    n_blocks: int
    nt_offset: int
    nt_bytes: int
    stream_crc: int


class Spool:
    """Abstract spool of pickled records.

    ``tracer`` (a :class:`repro.obs.Tracer`, or None for the default
    zero-overhead path) receives one ``spool.write``/``spool.read``
    instant event per record, tagged with the channel and byte size —
    the event-level view of the paper's I/O-boundedness claim.
    ``metrics`` (a :class:`repro.obs.MetricsRegistry`, or None) receives
    a ``robust.spool_corruption_detected`` counter bump whenever a read
    fails an integrity check; the healthy hot path stays a single
    ``is not None`` test.
    """

    def __init__(
        self,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
    ):
        self.accountant = accountant
        self.channel = channel
        self.tracer = tracer
        self.metrics = metrics
        self.n_records = 0
        self.data_bytes = 0
        self._finalized = False

    # -- writing ----------------------------------------------------------

    def append(self, record: Any) -> None:
        if self._finalized:
            raise EvaluationError(f"spool {self.channel!r} already finalized")
        self.append_blob(self._encode(record))

    def _encode(self, record: Any) -> bytes:
        """Serialize one record (pickle by default; v3 uses the codec)."""
        return pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(self, blob: bytes) -> Any:
        """Inverse of :meth:`_encode`."""
        return pickle.loads(blob)

    def append_blob(self, blob: bytes) -> None:
        """Append an already-encoded record (the salvage/copy fast path)."""
        if self._finalized:
            raise EvaluationError(f"spool {self.channel!r} already finalized")
        self._write_blob(blob)
        self.n_records += 1
        self.data_bytes += len(blob)
        if self.accountant is not None:
            self.accountant.charge_write(len(blob), self.channel)
        if self.tracer is not None:
            self.tracer.instant(
                "spool.write", cat="io", channel=self.channel, nbytes=len(blob)
            )

    def append_blobs(self, blobs: List[bytes]) -> None:
        """Append many already-encoded records (subclasses may batch
        the framing and accounting)."""
        for blob in blobs:
            self.append_blob(blob)

    def finalize(self) -> None:
        """End the writing phase; the spool becomes readable."""
        self._finalized = True

    # -- reading ----------------------------------------------------------

    def read_forward(self) -> Iterator[Any]:
        self._require_finalized()
        for blob in self._iter_blobs_forward():
            if self.accountant is not None:
                self.accountant.charge_read(len(blob), self.channel)
            if self.tracer is not None:
                self.tracer.instant(
                    "spool.read", cat="io", channel=self.channel, nbytes=len(blob)
                )
            yield self._decode(blob)

    def read_backward(self) -> Iterator[Any]:
        self._require_finalized()
        for blob in self._iter_blobs_backward():
            if self.accountant is not None:
                self.accountant.charge_read(len(blob), self.channel)
            if self.tracer is not None:
                self.tracer.instant(
                    "spool.read", cat="io", channel=self.channel, nbytes=len(blob)
                )
            yield self._decode(blob)

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise EvaluationError(
                f"spool {self.channel!r} read before writing finished"
            )

    def _corrupt(
        self,
        message: str,
        *,
        record_index: Optional[int] = None,
        byte_offset: Optional[int] = None,
        reason: str = "corrupt",
        block_index: Optional[int] = None,
        block_byte_offset: Optional[int] = None,
    ) -> SpoolCorruptionError:
        """Build (and meter) a corruption error for this spool."""
        exc = SpoolCorruptionError(
            f"spool {self.channel!r}: {message}",
            record_index=record_index,
            byte_offset=byte_offset,
            path=getattr(self, "path", None),
            reason=reason,
            block_index=block_index,
            block_byte_offset=block_byte_offset,
        )
        if self.metrics is not None:
            self.metrics.counter("robust.spool_corruption_detected").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "spool.corruption",
                cat="robust",
                channel=self.channel,
                reason=reason,
                record_index=record_index,
                byte_offset=byte_offset,
                block_index=block_index,
            )
        return exc

    # -- to implement ------------------------------------------------------

    def _write_blob(self, blob: bytes) -> None:
        raise NotImplementedError

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        raise NotImplementedError

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Spool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySpool(Spool):
    """Spool held in memory (still serialized, still accounted)."""

    def __init__(
        self,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
    ):
        super().__init__(accountant, channel, tracer, metrics)
        self._blobs: List[bytes] = []

    def _write_blob(self, blob: bytes) -> None:
        self._blobs.append(blob)

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        return iter(self._blobs)

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        return iter(reversed(self._blobs))


#: Default per-spool byte budget before an :class:`AdaptiveSpool`
#: spills to disk.  Sized so typical interactive inputs never touch the
#: filesystem while a pathological APT still honors the paper's
#: bounded-primary-memory premise.
DEFAULT_SPOOL_MEMORY_BUDGET = 8 * 1024 * 1024


class AdaptiveSpool(Spool):
    """Memory-resident spool that transparently spills to a v3 DiskSpool.

    Small APTs — the overwhelmingly common case — never pay
    serialization at all: records are kept as live Python objects and
    handed back by reference.  Once the *estimated* footprint crosses
    ``memory_budget`` bytes, the buffered records are replayed into a
    fresh v3 :class:`DiskSpool` (temp file, removed on :meth:`close`)
    and all subsequent traffic streams through it, restoring the
    paper's secondary-storage behavior for inputs that actually need it.

    Byte accounting stays meaningful without encoding every record:
    the first ``EXACT_HEAD`` appends are probe-encoded through the v3
    codec and charged their exact size (small spools — the common case
    — account precisely), after which only every ``SAMPLE_EVERY``-th
    record is probed and the running average is charged.  The charged
    size of each record is remembered so the read side mirrors the
    write side exactly (per-pass read/write byte symmetry holds, as it
    does for the real formats).  After a spill, appends charge actual
    encoded bytes.

    Metrics: ``spool.spill.count`` / ``spool.spill.records`` /
    ``spool.spill.bytes`` count spill events, records replayed, and
    encoded bytes they produced; a ``spool.spill`` trace instant marks
    the moment in the timeline.
    """

    #: Probe-encode (and charge exactly) this many leading records.
    EXACT_HEAD = 64
    #: Past the head, probe-encode one record in this many to keep the
    #: running average calibrated.
    SAMPLE_EVERY = 32

    def __init__(
        self,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
        memory_budget: int = DEFAULT_SPOOL_MEMORY_BUDGET,
        block_size: int = DEFAULT_BLOCK_SIZE,
        disk_budget=None,
    ):
        super().__init__(accountant, channel, tracer, metrics)
        self.memory_budget = max(0, memory_budget)
        self.block_size = block_size
        #: Optional :class:`repro.governance.DiskBudget`: spills and
        #: post-spill growth are charged against it (and released on
        #: close), so a run-wide cap bounds total temp-spool bytes.
        self.disk_budget = disk_budget
        self._budget_charged = 0
        self._records: List[Any] = []
        #: Per-record charged byte sizes (estimates before the spill,
        #: actual encoded sizes after), mirrored on the read side.
        self._sizes: List[int] = []
        self._mem_bytes = 0
        self._disk: Optional[DiskSpool] = None
        self._probe = RecordCodec()
        self._sample_bytes = 0
        self._sample_count = 0
        self._avg_bytes = 0

    @property
    def spilled(self) -> bool:
        """Whether this spool has crossed its budget and gone to disk."""
        return self._disk is not None

    # -- writing ----------------------------------------------------------

    def _estimate(self, record: Any) -> int:
        i = self.n_records
        if i < self.EXACT_HEAD or not i % self.SAMPLE_EVERY:
            nbytes = len(self._probe.encode(record))
            self._sample_bytes += nbytes
            self._sample_count += 1
            self._avg_bytes = self._sample_bytes // self._sample_count
            if i < self.EXACT_HEAD:
                return nbytes
        return self._avg_bytes

    def append(self, record: Any) -> None:
        if self._finalized:
            raise EvaluationError(f"spool {self.channel!r} already finalized")
        if self._disk is None:
            nbytes = self._estimate(record)
            self._records.append(record)
            self._mem_bytes += nbytes
        else:
            before = self._disk.data_bytes
            self._disk.append(record)
            nbytes = self._disk.data_bytes - before
            if self.disk_budget is not None:
                # Past the spill every record is disk-bound: charge its
                # exact encoded size (raises DiskBudgetExceeded before
                # the next record is admitted once the cap is hit).
                self.disk_budget.charge(nbytes)
                self._budget_charged += nbytes
        self._sizes.append(nbytes)
        self.n_records += 1
        self.data_bytes += nbytes
        if self.accountant is not None:
            self.accountant.charge_write(nbytes, self.channel)
        if self.tracer is not None:
            self.tracer.instant(
                "spool.write", cat="io", channel=self.channel, nbytes=nbytes
            )
        if self._disk is None and self._mem_bytes > self.memory_budget:
            self._spill()

    def _spill(self) -> None:
        """Replay the buffered records into a fresh v3 temp DiskSpool.

        The inner spool carries no accountant/tracer of its own — the
        replayed records were already charged at append time, and all
        future traffic is charged by this wrapper — but it shares the
        metrics registry so corruption/codec counters keep flowing.
        """
        if self.disk_budget is not None:
            # Charge the whole buffered estimate up front: if the run
            # is already over budget the spill fails *before* creating
            # the temp file.
            self.disk_budget.charge(self._mem_bytes)
            self._budget_charged += self._mem_bytes
        disk = DiskSpool(
            None, accountant=None, channel=self.channel,
            tracer=None, metrics=self.metrics, block_size=self.block_size,
        )
        try:
            for record in self._records:
                disk.append(record)
        except BaseException:
            # A fault mid-spill (ENOSPC while flushing a block) must
            # not lose data or leak the half-written temp spool: the
            # buffered records are still intact in memory, so close the
            # disk spool (unlinking its tmp + owned file) and surface
            # the error with this spool still fully usable.
            disk.close()
            raise
        if self.metrics is not None:
            self.metrics.counter("spool.spill.count").inc()
            self.metrics.counter("spool.spill.records").inc(len(self._records))
            self.metrics.counter("spool.spill.bytes").inc(disk.data_bytes)
        if self.tracer is not None:
            self.tracer.instant(
                "spool.spill", cat="io", channel=self.channel,
                records=len(self._records), estimated_bytes=self._mem_bytes,
                encoded_bytes=disk.data_bytes,
            )
        self._records = []
        self._disk = disk

    def finalize(self) -> None:
        if self._disk is not None:
            self._disk.finalize()
        super().finalize()

    # -- reading ----------------------------------------------------------

    def _charge_read(self, nbytes: int) -> None:
        if self.accountant is not None:
            self.accountant.charge_read(nbytes, self.channel)
        if self.tracer is not None:
            self.tracer.instant(
                "spool.read", cat="io", channel=self.channel, nbytes=nbytes
            )

    def read_forward(self) -> Iterator[Any]:
        self._require_finalized()
        if self._disk is None:
            for record, nbytes in zip(self._records, self._sizes):
                self._charge_read(nbytes)
                yield record
        else:
            decode = self._disk._decode
            for blob, nbytes in zip(
                self._disk._iter_blobs_forward(), self._sizes
            ):
                self._charge_read(nbytes)
                yield decode(blob)

    def read_backward(self) -> Iterator[Any]:
        self._require_finalized()
        if self._disk is None:
            for record, nbytes in zip(
                reversed(self._records), reversed(self._sizes)
            ):
                self._charge_read(nbytes)
                yield record
        else:
            decode = self._disk._decode
            for blob, nbytes in zip(
                self._disk._iter_blobs_backward(), reversed(self._sizes)
            ):
                self._charge_read(nbytes)
                yield decode(blob)

    def close(self) -> None:
        if self._disk is not None:
            self._disk.close()
            self._disk = None
        if self.disk_budget is not None and self._budget_charged:
            self.disk_budget.release(self._budget_charged)
            self._budget_charged = 0
        self._records = []
        self._sizes = []


def adaptive_spool_factory(
    accountant: Optional[IOAccountant] = None,
    tracer=None,
    metrics=None,
    memory_budget: int = DEFAULT_SPOOL_MEMORY_BUDGET,
    block_size: int = DEFAULT_BLOCK_SIZE,
    disk_budget=None,
):
    """Build a ``SpoolFactory`` producing budgeted :class:`AdaptiveSpool`\\ s.

    This is the default factory of
    :meth:`repro.core.linguist.Translator.translate_tokens` and of
    :class:`repro.evalgen.driver.AlternatingPassDriver`; the budget is
    surfaced on the CLI as ``repro run --spool-memory-budget``.
    """

    def factory(channel: str) -> AdaptiveSpool:
        return AdaptiveSpool(
            accountant, channel, tracer=tracer, metrics=metrics,
            memory_budget=memory_budget, block_size=block_size,
            disk_budget=disk_budget,
        )

    return factory


class DiskSpool(Spool):
    """Spool on real secondary storage (compact block format v3 by default).

    While being written, records stream into ``<path>.tmp``;
    :meth:`finalize` seals the footer, fsyncs, and atomically renames
    the temp file over ``path``.  Pass ``format_version=2`` for the
    per-record-checksummed v2 layout or ``format_version=1`` for the
    legacy checksum-free framing (back-compat tests); all versions are
    auto-detected on read.  Use :meth:`DiskSpool.open` to attach to an
    existing finalized spool file (checkpoint resume, fsck).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
        format_version: int = FORMAT_V3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        seed_names=None,
        durable: bool = True,
    ):
        super().__init__(accountant, channel, tracer, metrics)
        if format_version not in (FORMAT_V1, FORMAT_V2, FORMAT_V3):
            raise ValueError(f"unknown spool format version {format_version}")
        self.format_version = format_version
        self.block_size = max(1, block_size)
        #: ``durable=False`` skips the fsync at :meth:`finalize` (flush +
        #: atomic rename only).  Correct only for *cache* artifacts — the
        #: incremental memo — where a file torn by power loss fails its
        #: stream-CRC check on the next attach and degrades to a cold
        #: miss instead of corrupting a translation.
        self._durable = durable
        if path is None:
            fd, path = tempfile.mkstemp(prefix="apt_", suffix=".spool")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._stream_crc = 0
        #: v3 writer state: the codec (doubles as the read codec of a
        #: freshly written spool), the current block buffer, and counts.
        self._codec: Optional[RecordCodec] = None
        self._block_buf: Optional[bytearray] = None
        self._block_records = 0
        self._n_blocks = 0
        self._nt_bytes = 0
        if format_version == FORMAT_V3:
            # ``seed_names`` pre-populates the codec's name table with a
            # copy of another (sealed) spool's table, so blobs encoded
            # against the source decode identically here — the raw
            # cross-generation splice of the incremental memo.
            self._codec = RecordCodec(
                seed_names.copy() if seed_names is not None else None
            )
            self._block_buf = bytearray()
            self._tmp_path: Optional[str] = path + ".tmp"
            self._writer: Optional[io.BufferedWriter] = _aw.open_file(
                self._tmp_path, "wb"
            )
            self._writer.write(_HEADER.pack(MAGIC_V3, FORMAT_V3, 0))
        elif format_version == FORMAT_V2:
            self._tmp_path = path + ".tmp"
            self._writer = _aw.open_file(self._tmp_path, "wb")
            self._writer.write(_HEADER.pack(MAGIC, FORMAT_V2, 0))
        else:
            self._tmp_path = None
            self._writer = _aw.open_file(path, "wb")

    # -- attach to an existing file ---------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
    ) -> "DiskSpool":
        """Attach (read-only) to an existing finalized spool file.

        Sniffs the format version, verifies the v2 footer, and fills
        ``n_records``/``data_bytes`` from it; v1 files get counts by a
        framing walk (no checksums to verify).
        """
        spool = cls.__new__(cls)
        Spool.__init__(spool, accountant, channel, tracer, metrics)
        spool.path = path
        spool._owns_file = False
        spool._writer = None
        spool._tmp_path = None
        spool._stream_crc = 0
        spool._finalized = True
        spool._durable = True
        spool._codec = None
        spool._block_buf = None
        spool._block_records = 0
        spool._n_blocks = 0
        spool._nt_bytes = 0
        spool.block_size = DEFAULT_BLOCK_SIZE
        if not os.path.exists(path):
            raise spool._corrupt("spool file missing", reason="truncated")
        with open(path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            spool.format_version = spool._sniff_version(f, size)
            if spool.format_version == FORMAT_V3:
                footer = spool._read_footer3(f, size)
                spool.n_records = footer.n_records
                spool.data_bytes = footer.data_bytes
                spool._stream_crc = footer.stream_crc
                spool._n_blocks = footer.n_blocks
                spool._nt_bytes = footer.nt_bytes
            elif spool.format_version == FORMAT_V2:
                footer = spool._read_footer(f, size)
                spool.n_records = footer.n_records
                spool.data_bytes = footer.data_bytes
                spool._stream_crc = footer.stream_crc
            else:
                n, nbytes = 0, 0
                for blob in spool._iter_v1_forward(f, size):
                    n += 1
                    nbytes += len(blob)
                spool.n_records = n
                spool.data_bytes = nbytes
        return spool

    # -- writing ----------------------------------------------------------

    def _encode(self, record: Any) -> bytes:
        if self.format_version == FORMAT_V3:
            return self._codec.encode(record)
        return super()._encode(record)

    def _decode(self, blob: bytes) -> Any:
        if self.format_version == FORMAT_V3:
            codec = self._codec
            if codec is None:
                codec = self._codec = self._load_codec()
            return codec.decode(blob)
        return super()._decode(blob)

    def _write_blob(self, blob: bytes) -> None:
        if self._writer is None:
            raise EvaluationError(f"spool {self.channel!r} is not open for writing")
        if self.format_version == FORMAT_V3:
            buf = self._block_buf
            buf += _LEN.pack(len(blob))
            buf += blob
            self._block_records += 1
            self._stream_crc = zlib.crc32(blob, self._stream_crc)
            if len(buf) >= self.block_size:
                self._flush_block()
        elif self.format_version == FORMAT_V2:
            crc = zlib.crc32(blob)
            self._writer.write(_REC_HEAD.pack(len(blob), crc))
            self._writer.write(blob)
            self._writer.write(_REC_TAIL.pack(crc, len(blob)))
            self._stream_crc = zlib.crc32(blob, self._stream_crc)
        else:
            self._writer.write(_LEN.pack(len(blob)))
            self._writer.write(blob)
            self._writer.write(_LEN.pack(len(blob)))

    def append_blobs(self, blobs: List[bytes]) -> None:
        """Bulk raw append: one accounting charge and one trace event
        for the whole batch, with the v3 framing loop kept local.  The
        incremental memo splices thousands of sealed blobs per hit
        through here; per-record overhead is the price of a splice."""
        if self._finalized:
            raise EvaluationError(f"spool {self.channel!r} already finalized")
        if self.format_version != FORMAT_V3 or self._writer is None:
            for blob in blobs:
                self.append_blob(blob)
            return
        pack = _LEN.pack
        block_size = self.block_size
        # The stream CRC chains per appended blob, which is by definition
        # the CRC of the blobs' concatenation — one C-level pass beats
        # thousands of tiny zlib calls on the splice path.
        joined = b"".join(blobs)
        nbytes = len(joined)
        self._stream_crc = zlib.crc32(joined, self._stream_crc)
        buf = self._block_buf
        recs = self._block_records
        for blob in blobs:
            buf += pack(len(blob))
            buf += blob
            recs += 1
            if len(buf) >= block_size:
                self._block_records = recs
                self._flush_block()
                buf = self._block_buf
                recs = 0
        self._block_records = recs
        self.n_records += len(blobs)
        self.data_bytes += nbytes
        if self.accountant is not None:
            charge = getattr(self.accountant, "charge_write_many", None)
            if charge is not None:
                charge(len(blobs), nbytes, self.channel)
            else:
                for blob in blobs:
                    self.accountant.charge_write(len(blob), self.channel)
        if self.tracer is not None:
            self.tracer.instant(
                "spool.write", cat="io", channel=self.channel,
                nbytes=nbytes, n_records=len(blobs),
            )

    def _flush_block(self) -> None:
        """Seal the current in-memory block: one CRC32 and one mirrored
        frame for however many records accumulated."""
        if not self._block_records:
            return
        payload = bytes(self._block_buf)
        crc = zlib.crc32(payload)
        self._writer.write(
            _BLOCK_HEAD.pack(len(payload), self._block_records, crc)
        )
        self._writer.write(payload)
        self._writer.write(
            _BLOCK_TAIL.pack(crc, self._block_records, len(payload))
        )
        self._n_blocks += 1
        if self.metrics is not None:
            self.metrics.counter("spool.codec.blocks_written").inc()
            self.metrics.counter("spool.codec.block_payload_bytes").inc(
                len(payload)
            )
        self._block_buf = bytearray()
        self._block_records = 0

    def finalize(self) -> None:
        # A fault anywhere in here (ENOSPC in the nametable/footer
        # write, failed fsync, failed rename) must never tear the
        # sealed ``self.path``: the seal only lands via the final
        # atomic rename, so on failure we close the writer and leave
        # ``<path>.tmp`` behind as a classifiable *unsealed-tmp*
        # artifact (``repro doctor`` sweeps it; in-process callers that
        # ``close()`` unlink it immediately).
        if self._writer is not None:
            try:
                if self.format_version == FORMAT_V3:
                    self._flush_block()
                    nt_payload = serialize_names(self._codec.names)
                    nt_offset = self._writer.tell()
                    self._nt_bytes = len(nt_payload)
                    self._writer.write(
                        _NT_HEAD.pack(len(nt_payload), zlib.crc32(nt_payload))
                    )
                    self._writer.write(nt_payload)
                    self._writer.write(
                        _footer3_bytes(
                            self.n_records, self.data_bytes, self._n_blocks,
                            nt_offset, len(nt_payload), self._stream_crc,
                        )
                    )
                    if self._durable:
                        _aw.fsync_file(self._writer)
                    else:
                        self._writer.flush()
                    self._writer.close()
                    self._writer = None
                    _aw.atomic_replace(self._tmp_path, self.path)
                    self._tmp_path = None
                    if self.metrics is not None:
                        self.metrics.counter("spool.codec.records_written").inc(
                            self.n_records
                        )
                        self.metrics.counter("spool.codec.nametable_bytes").inc(
                            len(nt_payload)
                        )
                elif self.format_version == FORMAT_V2:
                    self._writer.write(
                        _footer_bytes(
                            self.n_records, self.data_bytes, self._stream_crc
                        )
                    )
                    if self._durable:
                        _aw.fsync_file(self._writer)
                    else:
                        self._writer.flush()
                    self._writer.close()
                    self._writer = None
                    _aw.atomic_replace(self._tmp_path, self.path)
                    self._tmp_path = None
                else:
                    self._writer.close()
                    self._writer = None
            except BaseException:
                if self._writer is not None:
                    try:
                        self._writer.close()
                    except OSError:
                        pass
                    self._writer = None
                raise
        super().finalize()

    # -- format sniffing ---------------------------------------------------

    def _sniff_version(self, f, size: int) -> int:
        if size >= _HEADER.size:
            f.seek(0)
            magic, version, _flags = _HEADER.unpack(f.read(_HEADER.size))
            if magic == MAGIC:
                if version != FORMAT_V2:
                    raise self._corrupt(
                        f"unsupported spool format version {version}",
                        byte_offset=0,
                        reason="header",
                    )
                return FORMAT_V2
            if magic == MAGIC_V3:
                if version != FORMAT_V3:
                    raise self._corrupt(
                        f"unsupported spool format version {version}",
                        byte_offset=0,
                        reason="header",
                    )
                return FORMAT_V3
        return FORMAT_V1

    def _read_footer(self, f, size: int) -> SpoolFooter:
        """Read and verify the sealed v2 footer (raises on any damage)."""
        if size < _HEADER.size + _FOOTER.size:
            raise self._corrupt(
                f"file too short for a sealed spool ({size} bytes)",
                byte_offset=size,
                reason="truncated",
            )
        f.seek(size - _FOOTER.size)
        raw = f.read(_FOOTER.size)
        magic, n_records, data_bytes, stream_crc, footer_crc = _FOOTER.unpack(raw)
        if magic != FOOTER_MAGIC:
            raise self._corrupt(
                "missing footer seal (truncated file or crash before finalize)",
                byte_offset=size - _FOOTER.size,
                reason="footer",
            )
        if zlib.crc32(raw[: _FOOTER.size - 4]) != footer_crc:
            raise self._corrupt(
                "footer checksum mismatch",
                byte_offset=size - _FOOTER.size,
                reason="footer",
            )
        expected = (
            _HEADER.size
            + data_bytes
            + RECORD_OVERHEAD[FORMAT_V2] * n_records
            + _FOOTER.size
        )
        if expected != size:
            raise self._corrupt(
                f"footer inconsistent with file size "
                f"({size} bytes on disk, {expected} sealed)",
                byte_offset=size - _FOOTER.size,
                reason="footer",
            )
        return SpoolFooter(n_records, data_bytes, stream_crc)

    def _read_footer3(self, f, size: int) -> SpoolFooterV3:
        """Read and verify the sealed v3 footer (raises on any damage)."""
        min_size = _HEADER.size + _NT_HEAD.size + 4 + _FOOTER3.size
        if size < min_size:
            raise self._corrupt(
                f"file too short for a sealed v3 spool ({size} bytes)",
                byte_offset=size,
                reason="truncated",
            )
        f.seek(size - _FOOTER3.size)
        raw = f.read(_FOOTER3.size)
        (magic, n_records, data_bytes, n_blocks,
         nt_offset, nt_bytes, stream_crc, footer_crc) = _FOOTER3.unpack(raw)
        if magic != FOOTER_MAGIC_V3:
            raise self._corrupt(
                "missing footer seal (truncated file or crash before finalize)",
                byte_offset=size - _FOOTER3.size,
                reason="footer",
            )
        if zlib.crc32(raw[: _FOOTER3.size - 4]) != footer_crc:
            raise self._corrupt(
                "footer checksum mismatch",
                byte_offset=size - _FOOTER3.size,
                reason="footer",
            )
        expected = nt_offset + _NT_HEAD.size + nt_bytes + _FOOTER3.size
        data_region = nt_offset - _HEADER.size
        expected_data = (
            data_bytes
            + RECORD_OVERHEAD[FORMAT_V3] * n_records
            + BLOCK_OVERHEAD * n_blocks
        )
        if expected != size or nt_offset < _HEADER.size or \
                data_region != expected_data:
            raise self._corrupt(
                f"footer inconsistent with file size "
                f"({size} bytes on disk, {expected} sealed; "
                f"data region {data_region} vs {expected_data} promised)",
                byte_offset=size - _FOOTER3.size,
                reason="footer",
            )
        return SpoolFooterV3(
            n_records, data_bytes, n_blocks, nt_offset, nt_bytes, stream_crc
        )

    def _load_codec(self) -> RecordCodec:
        """Load the sealed name-table section and build the read codec."""
        with open(self.path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            footer = self._read_footer3(f, size)
            f.seek(footer.nt_offset)
            head = f.read(_NT_HEAD.size)
            if len(head) != _NT_HEAD.size:
                raise self._corrupt(
                    "name-table section head truncated",
                    byte_offset=footer.nt_offset, reason="nametable",
                )
            nt_len, nt_crc = _NT_HEAD.unpack(head)
            if nt_len != footer.nt_bytes:
                raise self._corrupt(
                    f"name-table length {nt_len} disagrees with the "
                    f"footer ({footer.nt_bytes})",
                    byte_offset=footer.nt_offset, reason="nametable",
                )
            payload = f.read(nt_len)
            if len(payload) != nt_len:
                raise self._corrupt(
                    "name-table payload truncated",
                    byte_offset=footer.nt_offset, reason="nametable",
                )
            if zlib.crc32(payload) != nt_crc:
                raise self._corrupt(
                    "name-table checksum mismatch (bit rot or torn write)",
                    byte_offset=footer.nt_offset, reason="nametable",
                )
            try:
                names = deserialize_names(payload)
            except ValueError as exc:
                raise self._corrupt(
                    f"name-table payload undecodable: {exc}",
                    byte_offset=footer.nt_offset, reason="nametable",
                ) from exc
        return RecordCodec(names)

    # -- forward reading ---------------------------------------------------

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            version = self._sniff_version(f, size)
            if version == FORMAT_V3:
                yield from self._iter_v3_forward(f, size)
            elif version == FORMAT_V2:
                yield from self._iter_v2_forward(f, size)
            else:
                yield from self._iter_v1_forward(f, size)

    def _split_block(
        self, payload: bytes, n_records: int,
        block_index: int, block_start: int, first_record_index: int,
    ) -> List[bytes]:
        """Split a checksum-verified block payload into its records."""
        blobs: List[bytes] = []
        pos = 0
        end = len(payload)
        for i in range(n_records):
            if pos + _LEN.size > end:
                raise self._corrupt(
                    f"record length prefix overruns the block payload",
                    record_index=first_record_index + i,
                    byte_offset=block_start + _BLOCK_HEAD.size + pos,
                    block_index=block_index, block_byte_offset=pos,
                    reason="framing",
                )
            (length,) = _LEN.unpack_from(payload, pos)
            pos += _LEN.size
            if pos + length > end:
                raise self._corrupt(
                    f"record length {length} overruns the block payload",
                    record_index=first_record_index + i,
                    byte_offset=block_start + _BLOCK_HEAD.size + pos,
                    block_index=block_index, block_byte_offset=pos,
                    reason="framing",
                )
            blobs.append(payload[pos:pos + length])
            pos += length
        if pos != end:
            raise self._corrupt(
                f"block payload has {end - pos} trailing bytes after "
                f"its {n_records} records",
                record_index=first_record_index + n_records - 1,
                byte_offset=block_start + _BLOCK_HEAD.size + pos,
                block_index=block_index, block_byte_offset=pos,
                reason="framing",
            )
        return blobs

    def _read_block_forward(
        self, f, pos: int, data_end: int, block_index: int,
        first_record_index: int,
    ) -> Tuple[List[bytes], int]:
        """Read + verify one block at ``pos``; return (records, end pos)."""
        head = f.read(_BLOCK_HEAD.size)
        if len(head) != _BLOCK_HEAD.size:
            raise self._corrupt(
                "block header truncated",
                record_index=first_record_index, byte_offset=pos,
                block_index=block_index, reason="truncated",
            )
        payload_len, n_records, want_crc = _BLOCK_HEAD.unpack(head)
        if payload_len > data_end - pos - BLOCK_OVERHEAD:
            raise self._corrupt(
                f"block payload length {payload_len} overruns the sealed "
                f"data region",
                record_index=first_record_index, byte_offset=pos,
                block_index=block_index, reason="framing",
            )
        payload = f.read(payload_len)
        if len(payload) != payload_len:
            raise self._corrupt(
                "block payload truncated",
                record_index=first_record_index, byte_offset=pos,
                block_index=block_index, reason="truncated",
            )
        tail = f.read(_BLOCK_TAIL.size)
        if len(tail) != _BLOCK_TAIL.size:
            raise self._corrupt(
                "block trailer truncated",
                record_index=first_record_index, byte_offset=pos,
                block_index=block_index, reason="truncated",
            )
        tail_crc, tail_n, tail_len = _BLOCK_TAIL.unpack(tail)
        if tail_len != payload_len or tail_n != n_records or \
                tail_crc != want_crc:
            raise self._corrupt(
                "block head/tail framing mismatch",
                record_index=first_record_index, byte_offset=pos,
                block_index=block_index, reason="framing",
            )
        if zlib.crc32(payload) != want_crc:
            raise self._corrupt(
                "block checksum mismatch (bit rot or torn write)",
                record_index=first_record_index, byte_offset=pos,
                block_index=block_index, reason="checksum",
            )
        blobs = self._split_block(
            payload, n_records, block_index, pos, first_record_index
        )
        return blobs, pos + BLOCK_OVERHEAD + payload_len

    def _iter_v3_forward(self, f, size: int) -> Iterator[bytes]:
        footer = self._read_footer3(f, size)
        data_end = footer.nt_offset
        pos = _HEADER.size
        f.seek(pos)
        index = 0
        block_index = 0
        crc = 0
        while pos < data_end:
            blobs, pos = self._read_block_forward(
                f, pos, data_end, block_index, index
            )
            for blob in blobs:
                crc = zlib.crc32(blob, crc)
                yield blob
                index += 1
            block_index += 1
        if index != footer.n_records or block_index != footer.n_blocks:
            raise self._corrupt(
                f"footer promises {footer.n_records} records in "
                f"{footer.n_blocks} blocks, walked {index} in {block_index}",
                record_index=index, byte_offset=pos,
                block_index=block_index, reason="footer",
            )
        if crc != footer.stream_crc:
            raise self._corrupt(
                "whole-file stream checksum mismatch",
                record_index=index, byte_offset=pos, reason="footer",
            )

    def _iter_v2_forward(self, f, size: int) -> Iterator[bytes]:
        footer = self._read_footer(f, size)
        data_end = size - _FOOTER.size
        pos = _HEADER.size
        f.seek(pos)
        index = 0
        crc = 0
        overhead = RECORD_OVERHEAD[FORMAT_V2]
        while pos < data_end:
            head = f.read(_REC_HEAD.size)
            if len(head) != _REC_HEAD.size:
                raise self._corrupt(
                    "record header truncated",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            length, want_crc = _REC_HEAD.unpack(head)
            if length > data_end - pos - overhead:
                raise self._corrupt(
                    f"record length {length} overruns the sealed data region",
                    record_index=index, byte_offset=pos, reason="framing",
                )
            blob = f.read(length)
            if len(blob) != length:
                raise self._corrupt(
                    "record payload truncated",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            if zlib.crc32(blob) != want_crc:
                raise self._corrupt(
                    "record checksum mismatch (bit rot or torn write)",
                    record_index=index, byte_offset=pos, reason="checksum",
                )
            tail = f.read(_REC_TAIL.size)
            if len(tail) != _REC_TAIL.size:
                raise self._corrupt(
                    "record trailer truncated",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            tail_crc, tail_len = _REC_TAIL.unpack(tail)
            if tail_len != length or tail_crc != want_crc:
                raise self._corrupt(
                    "record head/tail framing mismatch",
                    record_index=index, byte_offset=pos, reason="framing",
                )
            crc = zlib.crc32(blob, crc)
            yield blob
            index += 1
            pos += overhead + length
        if index != footer.n_records:
            raise self._corrupt(
                f"footer promises {footer.n_records} records, walked {index}",
                record_index=index, byte_offset=pos, reason="footer",
            )
        if crc != footer.stream_crc:
            raise self._corrupt(
                "whole-file stream checksum mismatch",
                record_index=index, byte_offset=pos, reason="footer",
            )

    def _iter_v1_forward(self, f, size: int) -> Iterator[bytes]:
        f.seek(0)
        pos = 0
        index = 0
        while True:
            head = f.read(_LEN.size)
            if not head:
                return
            if len(head) != _LEN.size:
                raise self._corrupt(
                    "truncated record header",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            (length,) = _LEN.unpack(head)
            if length > size - pos - 2 * _LEN.size:
                raise self._corrupt(
                    f"record length {length} overruns the file (truncated spool)",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            blob = f.read(length)
            if len(blob) != length:
                raise self._corrupt(
                    "truncated spool",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            trailer = f.read(_LEN.size)
            if len(trailer) != _LEN.size or _LEN.unpack(trailer)[0] != length:
                raise self._corrupt(
                    "truncated or corrupt spool (record trailer mismatch)",
                    record_index=index, byte_offset=pos, reason="framing",
                )
            yield blob
            index += 1
            pos += 2 * _LEN.size + length

    # -- backward reading --------------------------------------------------

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            version = self._sniff_version(f, size)
            if version == FORMAT_V3:
                yield from self._iter_v3_backward(f, size)
            elif version == FORMAT_V2:
                yield from self._iter_v2_backward(f, size)
            else:
                yield from self._iter_v1_backward(f, size)

    def _iter_v3_backward(self, f, size: int) -> Iterator[bytes]:
        """Hop block-to-block from the back via the mirrored tails,
        decode each block forward, and yield its records reversed —
        memory stays bounded by one block, not the file."""
        footer = self._read_footer3(f, size)
        pos = footer.nt_offset  # end of the block region
        blocks_seen = 0
        records_seen = 0
        while pos > _HEADER.size:
            block_index = footer.n_blocks - blocks_seen - 1
            if pos - _BLOCK_TAIL.size < _HEADER.size:
                raise self._corrupt(
                    "dangling bytes before the first block",
                    byte_offset=pos, block_index=block_index,
                    reason="framing",
                )
            f.seek(pos - _BLOCK_TAIL.size)
            tail_crc, tail_n, tail_len = _BLOCK_TAIL.unpack(
                f.read(_BLOCK_TAIL.size)
            )
            start = pos - BLOCK_OVERHEAD - tail_len
            if start < _HEADER.size:
                raise self._corrupt(
                    f"trailing block length {tail_len} underruns the header",
                    byte_offset=pos - _BLOCK_TAIL.size,
                    block_index=block_index, reason="framing",
                )
            f.seek(start)
            first_record_index = None  # filled after the head is read
            head = f.read(_BLOCK_HEAD.size)
            payload_len, n_records, want_crc = _BLOCK_HEAD.unpack(head)
            first_record_index = (
                footer.n_records - records_seen - n_records
            )
            if payload_len != tail_len or n_records != tail_n or \
                    want_crc != tail_crc:
                raise self._corrupt(
                    "block head/tail framing mismatch",
                    record_index=max(first_record_index, 0),
                    byte_offset=start, block_index=block_index,
                    reason="framing",
                )
            payload = f.read(payload_len)
            if len(payload) != payload_len or zlib.crc32(payload) != want_crc:
                raise self._corrupt(
                    "block checksum mismatch (bit rot or torn write)",
                    record_index=max(first_record_index, 0),
                    byte_offset=start, block_index=block_index,
                    reason="checksum",
                )
            blobs = self._split_block(
                payload, n_records, block_index, start,
                max(first_record_index, 0),
            )
            yield from reversed(blobs)
            blocks_seen += 1
            records_seen += n_records
            pos = start
        if blocks_seen != footer.n_blocks or records_seen != footer.n_records:
            raise self._corrupt(
                f"footer promises {footer.n_records} records in "
                f"{footer.n_blocks} blocks, walked {records_seen} in "
                f"{blocks_seen}",
                byte_offset=pos, reason="footer",
            )

    def _iter_v2_backward(self, f, size: int) -> Iterator[bytes]:
        footer = self._read_footer(f, size)
        pos = size - _FOOTER.size  # end of the data region
        overhead = RECORD_OVERHEAD[FORMAT_V2]
        seen = 0
        while pos > _HEADER.size:
            index = footer.n_records - seen - 1  # forward-order index
            f.seek(pos - _REC_TAIL.size)
            tail_crc, length = _REC_TAIL.unpack(f.read(_REC_TAIL.size))
            start = pos - overhead - length
            if start < _HEADER.size:
                raise self._corrupt(
                    f"trailing length {length} underruns the header",
                    record_index=index, byte_offset=pos - _REC_TAIL.size,
                    reason="framing",
                )
            f.seek(start)
            head_len, head_crc = _REC_HEAD.unpack(f.read(_REC_HEAD.size))
            if head_len != length or head_crc != tail_crc:
                raise self._corrupt(
                    "record head/tail framing mismatch",
                    record_index=index, byte_offset=start, reason="framing",
                )
            blob = f.read(length)
            if len(blob) != length or zlib.crc32(blob) != head_crc:
                raise self._corrupt(
                    "record checksum mismatch (bit rot or torn write)",
                    record_index=index, byte_offset=start, reason="checksum",
                )
            yield blob
            seen += 1
            pos = start
        if seen != footer.n_records:
            raise self._corrupt(
                f"footer promises {footer.n_records} records, walked {seen}",
                record_index=None, byte_offset=pos, reason="footer",
            )

    def _iter_v1_backward(self, f, size: int) -> Iterator[bytes]:
        pos = size
        while pos > 0:
            if pos < 2 * _LEN.size:
                raise self._corrupt(
                    "corrupt spool (dangling bytes before first record)",
                    byte_offset=pos, reason="framing",
                )
            f.seek(pos - _LEN.size)
            (length,) = _LEN.unpack(f.read(_LEN.size))
            start = pos - 2 * _LEN.size - length
            if start < 0:
                raise self._corrupt(
                    f"trailing length {length} underruns the file",
                    byte_offset=pos - _LEN.size, reason="framing",
                )
            # Cross-check the *leading* length word against the trailer —
            # a mismatched header must not go undetected just because we
            # approached the record from the right.
            f.seek(start)
            (head_length,) = _LEN.unpack(f.read(_LEN.size))
            if head_length != length:
                raise self._corrupt(
                    f"record head/tail length mismatch "
                    f"({head_length} vs {length})",
                    byte_offset=start, reason="framing",
                )
            blob = f.read(length)
            if len(blob) != length:
                raise self._corrupt(
                    "truncated spool",
                    byte_offset=start, reason="truncated",
                )
            yield blob
            pos = start

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._tmp_path is not None and os.path.exists(self._tmp_path):
            os.unlink(self._tmp_path)
            self._tmp_path = None
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def file_bytes(self) -> int:
        """Actual on-disk size, including framing, header, and footer."""
        if self.format_version == FORMAT_V3:
            if self._finalized and os.path.exists(self.path):
                return os.path.getsize(self.path)
            # Unfinalized estimate: header + data + per-record prefixes
            # + sealed blocks so far (+ the still-buffered one).
            pending = 1 if self._block_records else 0
            return (
                _HEADER.size
                + self.data_bytes
                + RECORD_OVERHEAD[FORMAT_V3] * self.n_records
                + BLOCK_OVERHEAD * (self._n_blocks + pending)
            )
        per_record = RECORD_OVERHEAD[self.format_version]
        fixed = (
            _HEADER.size + _FOOTER.size
            if self.format_version == FORMAT_V2
            else 0
        )
        return self.data_bytes + per_record * self.n_records + fixed


# ---------------------------------------------------------------------------
# fsck: non-raising scan + longest-valid-prefix salvage
# ---------------------------------------------------------------------------


@dataclass
class SpoolScanReport:
    """Outcome of a tolerant full sweep over a spool file (``repro fsck``)."""

    path: str
    version: int = FORMAT_V3
    file_bytes: int = 0
    #: Records whose framing + checksum verified, scanning forward.
    n_valid: int = 0
    #: Payload bytes across the valid prefix.
    valid_data_bytes: int = 0
    #: File offset one past the last valid record (start of the damage,
    #: or of the footer when the file is clean).
    valid_end_offset: int = 0
    #: Footer-sealed record count (None for v1 / unsealed files).
    sealed_records: Optional[int] = None
    footer_ok: bool = False
    #: v3 only: blocks whose frame + checksum verified / footer-sealed
    #: block count / name-table section integrity.
    n_blocks_valid: int = 0
    sealed_blocks: Optional[int] = None
    nametable_ok: Optional[bool] = None
    #: The first integrity failure met, if any.
    error: Optional[SpoolCorruptionError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def render(self) -> str:
        lines = [
            f"fsck {self.path}",
            f"  format      v{self.version}"
            + ("" if self.version == FORMAT_V1 else
               f" (footer {'sealed' if self.footer_ok else 'BAD'})"),
            f"  file bytes  {self.file_bytes:,}",
            f"  records     {self.n_valid:,} valid"
            + (f" / {self.sealed_records:,} sealed"
               if self.sealed_records is not None else ""),
        ]
        if self.version == FORMAT_V3:
            lines.append(
                f"  blocks      {self.n_blocks_valid:,} valid"
                + (f" / {self.sealed_blocks:,} sealed"
                   if self.sealed_blocks is not None else "")
            )
            if self.nametable_ok is not None:
                lines.append(
                    "  name table  "
                    + ("sealed" if self.nametable_ok else "BAD")
                )
        lines.append(
            f"  payload     {self.valid_data_bytes:,} bytes over the valid prefix"
        )
        if self.error is None:
            lines.append("  status      clean")
        else:
            lines.append(
                f"  status      CORRUPT at {self.error.locus()}"
                f" [{self.error.reason}]: {self.error}"
            )
        return "\n".join(lines)


class RandomAccessReader:
    """Random access into a sealed spool by record index.

    The streaming readers replay a whole pass; the time-travel debugger
    instead needs *one node's* state out of the middle of a sealed
    spool.  For v3 (block-framed) files this reader walks the block
    frames once at attach time — header fields only, no payload reads —
    building a ``(file offset, first record index)`` index, then serves
    ``record(i)`` by verifying + decoding only the one block that holds
    record ``i`` (with a one-block cache for locality).  v2/v1 files
    get a per-record offset index; their addresses are always block 0.

    Addresses are :class:`~repro.apt.codec.RecordAddress` triples
    ``(pass, block, record-in-block)`` — the replay coordinates the
    provenance log prints.
    """

    def __init__(self, spool: DiskSpool):
        if not spool._finalized:
            raise EvaluationError(
                "random access requires a sealed spool (finalize() first)"
            )
        self.spool = spool
        self._f = open(spool.path, "rb")
        size = self._f.seek(0, os.SEEK_END)
        self._cache_block: Optional[int] = None
        self._cache_blobs: List[bytes] = []
        #: Per-block (v3) or per-record (v2/v1) file offsets.
        self._starts: List[int] = []
        #: First record index of each v3 block (parallel to _starts).
        self._firsts: List[int] = []
        version = spool.format_version
        if version == FORMAT_V3:
            footer = spool._read_footer3(self._f, size)
            self._data_end = footer.nt_offset
            pos = _HEADER.size
            index = 0
            while pos < self._data_end:
                self._f.seek(pos)
                head = self._f.read(_BLOCK_HEAD.size)
                if len(head) != _BLOCK_HEAD.size:
                    raise spool._corrupt(
                        "block header truncated",
                        record_index=index, byte_offset=pos,
                        block_index=len(self._starts), reason="truncated",
                    )
                payload_len, n_records, _crc = _BLOCK_HEAD.unpack(head)
                if payload_len > self._data_end - pos - BLOCK_OVERHEAD:
                    raise spool._corrupt(
                        f"block payload length {payload_len} overruns the "
                        "sealed data region",
                        record_index=index, byte_offset=pos,
                        block_index=len(self._starts), reason="framing",
                    )
                self._starts.append(pos)
                self._firsts.append(index)
                index += n_records
                pos += BLOCK_OVERHEAD + payload_len
        elif version == FORMAT_V2:
            self._data_end = size - _FOOTER.size
            pos = _HEADER.size
            overhead = RECORD_OVERHEAD[FORMAT_V2]
            while pos < self._data_end:
                self._f.seek(pos)
                head = self._f.read(_REC_HEAD.size)
                if len(head) != _REC_HEAD.size:
                    raise spool._corrupt(
                        "record header truncated",
                        record_index=len(self._starts), byte_offset=pos,
                        reason="truncated",
                    )
                length, _crc = _REC_HEAD.unpack(head)
                if length > self._data_end - pos - overhead:
                    raise spool._corrupt(
                        f"record length {length} overruns the sealed data "
                        "region",
                        record_index=len(self._starts), byte_offset=pos,
                        reason="framing",
                    )
                self._starts.append(pos)
                pos += overhead + length
        else:
            self._data_end = size
            pos = 0
            while pos + _LEN.size <= size:
                self._f.seek(pos)
                (length,) = _LEN.unpack(self._f.read(_LEN.size))
                if pos + 2 * _LEN.size + length > size:
                    raise spool._corrupt(
                        f"record length {length} overruns the file",
                        record_index=len(self._starts), byte_offset=pos,
                        reason="framing",
                    )
                self._starts.append(pos)
                pos += 2 * _LEN.size + length

    @property
    def n_records(self) -> int:
        return self.spool.n_records

    def locate(self, index: int):
        """``(block, record-in-block)`` coordinates of record ``index``."""
        if not 0 <= index < self.spool.n_records:
            raise EvaluationError(
                f"record index {index} out of range "
                f"(spool holds {self.spool.n_records} records)"
            )
        if self.spool.format_version != FORMAT_V3:
            return 0, index
        import bisect

        block = bisect.bisect_right(self._firsts, index) - 1
        return block, index - self._firsts[block]

    def address(self, pass_k: int, index: int) -> RecordAddress:
        """The ``(pass, block, record)`` replay address of a record."""
        block, rec = self.locate(index)
        return RecordAddress(pass_k, block, rec)

    def _load_block(self, block: int) -> List[bytes]:
        """Read + verify ``block``'s blobs (one-block cache)."""
        spool = self.spool
        if self._cache_block != block:
            if spool.format_version == FORMAT_V3:
                pos = self._starts[block]
                self._f.seek(pos)
                blobs, _end = spool._read_block_forward(
                    self._f, pos, self._data_end, block, self._firsts[block]
                )
            elif spool.format_version == FORMAT_V2:
                blobs = [
                    self._read_v2_record(i) for i in range(len(self._starts))
                ]
            else:
                blobs = [
                    self._read_v1_record(i) for i in range(len(self._starts))
                ]
            self._cache_block = block
            self._cache_blobs = blobs
        return self._cache_blobs

    def record(self, index: int) -> Any:
        """Decode record ``index``, reading (and fully verifying) only
        its containing block."""
        spool = self.spool
        block, rec = self.locate(index)
        blobs = self._load_block(block)
        if spool.metrics is not None:
            spool.metrics.counter("spool.codec.random_reads").inc()
        return spool._decode(blobs[rec])

    def raw_record(self, index: int) -> bytes:
        """The still-encoded blob of record ``index`` — same block read
        and verification as :meth:`record`, no decode.  The blob is
        valid verbatim only in a spool whose codec was seeded from this
        spool's name table (:class:`DiskSpool` ``seed_names``)."""
        block, rec = self.locate(index)
        blobs = self._load_block(block)
        if self.spool.metrics is not None:
            self.spool.metrics.counter("spool.codec.random_reads").inc()
        return blobs[rec]

    def raw_range(self, start: int, end: int) -> Tuple[List[bytes], int]:
        """All still-encoded blobs of records ``[start, end)`` plus the
        number of distinct blocks touched — the bulk splice read.  Each
        block is loaded (and verified) once, then sliced."""
        if start >= end:
            return [], 0
        out: List[bytes] = []
        n_blocks = 0
        index = start
        while index < end:
            block, rec = self.locate(index)
            blobs = self._load_block(block)
            take = min(end - index, len(blobs) - rec)
            out.extend(blobs[rec : rec + take])
            index += take
            n_blocks += 1
        if self.spool.metrics is not None:
            self.spool.metrics.counter("spool.codec.random_reads").inc(
                len(out)
            )
        return out, n_blocks

    def _read_v2_record(self, index: int) -> bytes:
        spool = self.spool
        pos = self._starts[index]
        self._f.seek(pos)
        head = self._f.read(_REC_HEAD.size)
        length, want_crc = _REC_HEAD.unpack(head)
        blob = self._f.read(length)
        if len(blob) != length:
            raise spool._corrupt(
                "record payload truncated",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        if zlib.crc32(blob) != want_crc:
            raise spool._corrupt(
                "record checksum mismatch (bit rot or torn write)",
                record_index=index, byte_offset=pos, reason="checksum",
            )
        return blob

    def _read_v1_record(self, index: int) -> bytes:
        pos = self._starts[index]
        self._f.seek(pos)
        (length,) = _LEN.unpack(self._f.read(_LEN.size))
        return self._f.read(length)

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def __enter__(self) -> "RandomAccessReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scan_spool(path: str, metrics=None, tracer=None) -> SpoolScanReport:
    """Sweep ``path`` forward, verifying every record; never raises.

    Returns a :class:`SpoolScanReport` whose ``error`` (if any) is the
    first :class:`SpoolCorruptionError` encountered, and whose
    ``n_valid``/``valid_end_offset`` describe the longest
    checksum-valid prefix — the unit :func:`salvage_spool` recovers.
    """
    report = SpoolScanReport(path=path)
    spool = _attach_readonly(path, tracer, metrics)
    try:
        size = os.path.getsize(path)
    except OSError:
        report.error = spool._corrupt("spool file missing", reason="truncated")
        return report
    report.file_bytes = size
    with open(path, "rb") as f:
        try:
            version = spool._sniff_version(f, size)
        except SpoolCorruptionError as exc:
            report.error = exc
            return report
        report.version = version
        spool.format_version = version
        blocks_valid = [0]
        if version == FORMAT_V3:
            report.valid_end_offset = _HEADER.size
            footer3: Optional[SpoolFooterV3] = None
            try:
                footer3 = spool._read_footer3(f, size)
                report.sealed_records = footer3.n_records
                report.sealed_blocks = footer3.n_blocks
                report.footer_ok = True
            except SpoolCorruptionError as exc:
                report.error = exc
            # Walk blocks tolerantly; under an intact footer the data
            # region ends where the name-table section begins.
            data_end = footer3.nt_offset if report.footer_ok else size
            walker = _walk_v3_records(spool, f, data_end, blocks_valid)
        elif version == FORMAT_V2:
            report.valid_end_offset = _HEADER.size
            try:
                footer = spool._read_footer(f, size)
                report.sealed_records = footer.n_records
                report.footer_ok = True
            except SpoolCorruptionError as exc:
                report.error = exc
            # Walk records tolerantly even under a bad footer, bounding
            # the data region by the footer when it is intact.
            data_end = size - _FOOTER.size if report.footer_ok else size
            walker = _walk_v2_records(spool, f, data_end)
        else:
            walker = _walk_v1_records(spool, f, size)
        try:
            for offset_after, blob in walker:
                report.n_valid += 1
                report.valid_data_bytes += len(blob)
                report.valid_end_offset = offset_after
        except SpoolCorruptionError as exc:
            if report.error is None:
                report.error = exc
        report.n_blocks_valid = blocks_valid[0]
        if (
            report.error is None
            and report.sealed_records is not None
            and report.n_valid != report.sealed_records
        ):
            report.error = spool._corrupt(
                f"footer promises {report.sealed_records} records, "
                f"walked {report.n_valid}",
                record_index=report.n_valid,
                byte_offset=report.valid_end_offset,
                reason="footer",
            )
    if version == FORMAT_V3 and report.footer_ok:
        # The records are only decodable through the sealed name table,
        # so its integrity is part of the fsck verdict.
        try:
            spool._load_codec()
            report.nametable_ok = True
        except SpoolCorruptionError as exc:
            report.nametable_ok = False
            if report.error is None:
                report.error = exc
    return report


def _attach_readonly(path: str, tracer=None, metrics=None) -> DiskSpool:
    """Build a bare read-only :class:`DiskSpool` shell for fsck walks.

    Unlike :meth:`DiskSpool.open` this never touches the file, so it
    works on arbitrarily damaged inputs; the caller sniffs the version
    and sets ``format_version`` itself.
    """
    spool = DiskSpool.__new__(DiskSpool)
    Spool.__init__(spool, None, os.path.basename(path), tracer, metrics)
    spool.path = path
    spool._owns_file = False
    spool._writer = None
    spool._tmp_path = None
    spool._finalized = True
    spool._stream_crc = 0
    spool._codec = None
    spool._block_buf = None
    spool._block_records = 0
    spool._n_blocks = 0
    spool._nt_bytes = 0
    spool.block_size = DEFAULT_BLOCK_SIZE
    return spool


def _walk_v3_records(
    spool, f, data_end, blocks_valid
) -> Iterator[Tuple[int, bytes]]:
    """Tolerant forward walk over v3 blocks.

    Yields ``(offset_after, blob)`` per record — ``offset_after`` is the
    absolute file offset one past the record's bytes *inside* its block
    payload, so fsck reports stay record-granular even though integrity
    is verified block-at-a-time.  ``blocks_valid`` is a one-cell list
    incremented per fully verified block (generators cannot return a
    count mid-iteration to a caller that also consumes their items).
    """
    pos = _HEADER.size
    f.seek(pos)
    index = 0
    block_index = 0
    while pos < data_end:
        block_start = pos
        blobs, pos = spool._read_block_forward(
            f, block_start, data_end, block_index, index
        )
        blocks_valid[0] += 1
        off = block_start + _BLOCK_HEAD.size
        for blob in blobs:
            off += _LEN.size + len(blob)
            yield off, blob
            index += 1
        block_index += 1


def _collect_v3_blocks(spool, f, data_end) -> Tuple[List[bytes], int]:
    """Collect the valid-prefix record blobs of a v3 data region.

    Returns ``(blobs, end)`` where ``end`` is the file offset one past
    the last fully verified block — under a damaged footer that is the
    best guess for where the name-table section starts.
    """
    blobs_ok: List[bytes] = []
    pos = _HEADER.size
    f.seek(pos)
    index = 0
    block_index = 0
    try:
        while pos < data_end:
            blobs, pos = spool._read_block_forward(
                f, pos, data_end, block_index, index
            )
            blobs_ok.extend(blobs)
            index += len(blobs)
            block_index += 1
    except SpoolCorruptionError:
        pass  # the prefix up to the damage is what salvage copies
    return blobs_ok, pos


def _try_recover_nametable(f, nt_start: int, size: int):
    """Best-effort parse of a v3 name-table section at ``nt_start``.

    Used when the footer is damaged and the section can no longer be
    located through it.  Returns a :class:`RecordCodec` when the
    section's own length/crc framing verifies, else ``None``.
    """
    if nt_start + _NT_HEAD.size > size:
        return None
    f.seek(nt_start)
    head = f.read(_NT_HEAD.size)
    if len(head) != _NT_HEAD.size:
        return None
    nt_len, nt_crc = _NT_HEAD.unpack(head)
    if nt_start + _NT_HEAD.size + nt_len > size:
        return None
    payload = f.read(nt_len)
    if len(payload) != nt_len or zlib.crc32(payload) != nt_crc:
        return None
    try:
        return RecordCodec(deserialize_names(payload))
    except ValueError:
        return None


def _walk_v2_records(spool, f, data_end) -> Iterator[Tuple[int, bytes]]:
    pos = _HEADER.size
    f.seek(pos)
    index = 0
    overhead = RECORD_OVERHEAD[FORMAT_V2]
    while pos < data_end:
        head = f.read(_REC_HEAD.size)
        if len(head) != _REC_HEAD.size:
            raise spool._corrupt(
                "record header truncated",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        length, want_crc = _REC_HEAD.unpack(head)
        if length > data_end - pos - overhead:
            raise spool._corrupt(
                f"record length {length} overruns the data region",
                record_index=index, byte_offset=pos, reason="framing",
            )
        blob = f.read(length)
        tail = f.read(_REC_TAIL.size)
        if len(blob) != length or len(tail) != _REC_TAIL.size:
            raise spool._corrupt(
                "record truncated",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        tail_crc, tail_len = _REC_TAIL.unpack(tail)
        if tail_len != length or tail_crc != want_crc:
            raise spool._corrupt(
                "record head/tail framing mismatch",
                record_index=index, byte_offset=pos, reason="framing",
            )
        if zlib.crc32(blob) != want_crc:
            raise spool._corrupt(
                "record checksum mismatch",
                record_index=index, byte_offset=pos, reason="checksum",
            )
        pos += overhead + length
        yield pos, blob
        index += 1


def _walk_v1_records(spool, f, size) -> Iterator[Tuple[int, bytes]]:
    f.seek(0)
    pos = 0
    index = 0
    while pos < size:
        head = f.read(_LEN.size)
        if len(head) != _LEN.size:
            raise spool._corrupt(
                "truncated record header",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        (length,) = _LEN.unpack(head)
        if length > size - pos - 2 * _LEN.size:
            raise spool._corrupt(
                f"record length {length} overruns the file",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        blob = f.read(length)
        trailer = f.read(_LEN.size)
        if len(blob) != length or len(trailer) != _LEN.size:
            raise spool._corrupt(
                "truncated spool",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        if _LEN.unpack(trailer)[0] != length:
            raise spool._corrupt(
                "record trailer mismatch",
                record_index=index, byte_offset=pos, reason="framing",
            )
        pos += 2 * _LEN.size + length
        yield pos, blob
        index += 1


def salvage_spool(
    src: str, dst: str, metrics=None, tracer=None
) -> SpoolScanReport:
    """Recover the longest checksum-valid prefix of ``src`` into ``dst``.

    v1/v2 sources are rewritten as fresh sealed **v2** spools (record
    blobs are pickles — format-agnostic), while a v3 source is rescued
    into a sealed **v3** spool whose name table is copied verbatim from
    the source so the interned ids inside the copied blobs stay
    aligned.  When the v3 footer itself is the damaged part, salvage
    walks the blocks anyway and attempts to parse the name-table
    section where the valid blocks end — a flipped footer bit must not
    cost the whole spool.  A v3 file whose name table cannot be
    recovered at all (crash before finalize, or the section itself hit
    by bit rot) is unrecoverable by design: its blobs reference
    interned ids that no longer spell anything, so salvage writes an
    *empty* sealed spool rather than garbage.

    ``dst`` always verifies clean afterwards (atomic finalize).
    Returns the scan report of the *source*; the number of records
    actually recovered is reported via the ``robust.*`` metrics.
    """
    report = scan_spool(src, metrics=metrics, tracer=tracer)
    if report.version == FORMAT_V3:
        out = DiskSpool(dst, channel=os.path.basename(dst), tracer=tracer,
                        metrics=metrics, format_version=FORMAT_V3)
    else:
        out = DiskSpool(dst, channel=os.path.basename(dst), tracer=tracer,
                        metrics=metrics, format_version=FORMAT_V2)
    spool = _attach_readonly(src)
    spool.format_version = report.version
    recovered = 0
    try:
        size = report.file_bytes
        with open(src, "rb") as f:
            if report.version == FORMAT_V3:
                if report.footer_ok:
                    data_end = spool._read_footer3(f, size).nt_offset
                else:
                    data_end = size
                blobs_ok, nt_start = _collect_v3_blocks(
                    spool, f, data_end
                )
                if report.footer_ok and report.nametable_ok:
                    # Seed the output codec with the source's sealed
                    # name table so copied blobs decode identically.
                    codec: Optional[RecordCodec] = spool._load_codec()
                elif not report.footer_ok:
                    codec = _try_recover_nametable(f, nt_start, size)
                else:
                    codec = None  # sealed name table failed its crc
                if codec is not None:
                    out._codec = codec
                    walker = ((0, blob) for blob in blobs_ok)
                else:
                    walker = iter(())  # ids unspellable: nothing to save
            elif report.version == FORMAT_V2:
                data_end = size - _FOOTER.size if report.footer_ok else size
                walker = _walk_v2_records(spool, f, data_end)
            else:
                walker = _walk_v1_records(spool, f, size)
            try:
                for _, blob in walker:
                    out.append_blob(blob)
                    recovered += 1
                    if recovered >= report.n_valid:
                        break
            except SpoolCorruptionError:
                pass  # the prefix up to the damage is already copied
        out.finalize()
    except BaseException:
        out.close()
        raise
    if metrics is not None:
        metrics.counter("robust.spool_records_salvaged").inc(recovered)
        if not report.ok:
            metrics.counter("robust.spool_salvage_runs").inc()
    if tracer is not None:
        tracer.instant(
            "spool.salvage", cat="robust", src=src, dst=dst,
            recovered=recovered,
        )
    return report
