"""Spool files: the APT intermediate files.

A *spool* is written strictly sequentially (append) and then read
sequentially either **forward or backward** — the whole §II evaluation
paradigm rests on reading the previous pass's output file backwards.
:class:`DiskSpool` keeps records on real secondary storage;
:class:`MemorySpool` is the fast equivalent for tests.  Both charge
every transfer to an :class:`~repro.util.iotrack.IOAccountant`.

Durable format v2
-----------------

Real secondary storage fails — torn writes, truncation, bit rot — so
the on-disk format carries integrity metadata end to end::

    header   "APTSPL2\\n" magic + u16 version + u16 flags       (12 B)
    record   <u32 len> <u32 crc32> <blob> <u32 crc32> <u32 len> (16 B + blob)
    ...
    footer   "APTSEAL\\n" magic + u64 n_records + u64 data_bytes
             + u32 stream_crc + u32 footer_crc                  (32 B)

The record framing is *mirrored* (length outermost, checksum inner on
both sides) so a backward reader hops record-to-record with two seeks
and still cross-checks the leading words against the trailing ones.
The footer seals the file: record count, payload byte count, a running
CRC32 over every blob in write order, and a CRC32 of the footer itself.
``finalize()`` is atomic — records stream into ``<path>.tmp``, the
footer is written, the file is flushed + fsync'ed, and only then
renamed over ``<path>`` — so a finalized spool is either completely
present or absent, never half-sealed.

Legacy **v1** files (bare ``<u32 len> blob <u32 len>`` framing, no
header/footer/checksums) remain readable: the readers sniff the magic
and fall back to the v1 framing walk, now with the leading/trailing
length cross-check the original backward reader skipped.

Every integrity failure raises :class:`~repro.errors.SpoolCorruptionError`
naming the 0-based record index and byte offset; :func:`scan_spool` and
:func:`salvage_spool` give ``repro fsck`` a non-raising sweep and a
longest-valid-prefix recovery path.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import EvaluationError, SpoolCorruptionError
from repro.util.iotrack import IOAccountant

_LEN = struct.Struct("<I")

#: v2 file header: magic, format version, flags (reserved).
MAGIC = b"APTSPL2\n"
_HEADER = struct.Struct("<8sHH")
#: v2 record head (length, crc32) and mirrored tail (crc32, length).
_REC_HEAD = struct.Struct("<II")
_REC_TAIL = struct.Struct("<II")
#: v2 sealed footer: magic, n_records, data_bytes, stream crc, footer crc.
FOOTER_MAGIC = b"APTSEAL\n"
_FOOTER = struct.Struct("<8sQQII")

FORMAT_V1 = 1
FORMAT_V2 = 2

#: Per-record framing overhead in bytes, by format version.
RECORD_OVERHEAD = {FORMAT_V1: 2 * _LEN.size,
                   FORMAT_V2: _REC_HEAD.size + _REC_TAIL.size}


def _footer_bytes(n_records: int, data_bytes: int, stream_crc: int) -> bytes:
    body = _FOOTER.pack(FOOTER_MAGIC, n_records, data_bytes, stream_crc, 0)
    crc = zlib.crc32(body[: _FOOTER.size - 4])
    return body[: _FOOTER.size - 4] + _LEN.pack(crc)


@dataclass
class SpoolFooter:
    """Decoded v2 footer."""

    n_records: int
    data_bytes: int
    stream_crc: int


class Spool:
    """Abstract spool of pickled records.

    ``tracer`` (a :class:`repro.obs.Tracer`, or None for the default
    zero-overhead path) receives one ``spool.write``/``spool.read``
    instant event per record, tagged with the channel and byte size —
    the event-level view of the paper's I/O-boundedness claim.
    ``metrics`` (a :class:`repro.obs.MetricsRegistry`, or None) receives
    a ``robust.spool_corruption_detected`` counter bump whenever a read
    fails an integrity check; the healthy hot path stays a single
    ``is not None`` test.
    """

    def __init__(
        self,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
    ):
        self.accountant = accountant
        self.channel = channel
        self.tracer = tracer
        self.metrics = metrics
        self.n_records = 0
        self.data_bytes = 0
        self._finalized = False

    # -- writing ----------------------------------------------------------

    def append(self, record: Any) -> None:
        if self._finalized:
            raise EvaluationError(f"spool {self.channel!r} already finalized")
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self.append_blob(blob)

    def append_blob(self, blob: bytes) -> None:
        """Append an already-pickled record (the salvage/copy fast path)."""
        if self._finalized:
            raise EvaluationError(f"spool {self.channel!r} already finalized")
        self._write_blob(blob)
        self.n_records += 1
        self.data_bytes += len(blob)
        if self.accountant is not None:
            self.accountant.charge_write(len(blob), self.channel)
        if self.tracer is not None:
            self.tracer.instant(
                "spool.write", cat="io", channel=self.channel, nbytes=len(blob)
            )

    def finalize(self) -> None:
        """End the writing phase; the spool becomes readable."""
        self._finalized = True

    # -- reading ----------------------------------------------------------

    def read_forward(self) -> Iterator[Any]:
        self._require_finalized()
        for blob in self._iter_blobs_forward():
            if self.accountant is not None:
                self.accountant.charge_read(len(blob), self.channel)
            if self.tracer is not None:
                self.tracer.instant(
                    "spool.read", cat="io", channel=self.channel, nbytes=len(blob)
                )
            yield pickle.loads(blob)

    def read_backward(self) -> Iterator[Any]:
        self._require_finalized()
        for blob in self._iter_blobs_backward():
            if self.accountant is not None:
                self.accountant.charge_read(len(blob), self.channel)
            if self.tracer is not None:
                self.tracer.instant(
                    "spool.read", cat="io", channel=self.channel, nbytes=len(blob)
                )
            yield pickle.loads(blob)

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise EvaluationError(
                f"spool {self.channel!r} read before writing finished"
            )

    def _corrupt(
        self,
        message: str,
        *,
        record_index: Optional[int] = None,
        byte_offset: Optional[int] = None,
        reason: str = "corrupt",
    ) -> SpoolCorruptionError:
        """Build (and meter) a corruption error for this spool."""
        exc = SpoolCorruptionError(
            f"spool {self.channel!r}: {message}",
            record_index=record_index,
            byte_offset=byte_offset,
            path=getattr(self, "path", None),
            reason=reason,
        )
        if self.metrics is not None:
            self.metrics.counter("robust.spool_corruption_detected").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "spool.corruption",
                cat="robust",
                channel=self.channel,
                reason=reason,
                record_index=record_index,
                byte_offset=byte_offset,
            )
        return exc

    # -- to implement ------------------------------------------------------

    def _write_blob(self, blob: bytes) -> None:
        raise NotImplementedError

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        raise NotImplementedError

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Spool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySpool(Spool):
    """Spool held in memory (still serialized, still accounted)."""

    def __init__(
        self,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
    ):
        super().__init__(accountant, channel, tracer, metrics)
        self._blobs: List[bytes] = []

    def _write_blob(self, blob: bytes) -> None:
        self._blobs.append(blob)

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        return iter(self._blobs)

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        return iter(reversed(self._blobs))


class DiskSpool(Spool):
    """Spool on real secondary storage (durable format v2 by default).

    While being written, records stream into ``<path>.tmp``;
    :meth:`finalize` seals the footer, fsyncs, and atomically renames
    the temp file over ``path``.  Pass ``format_version=1`` to write
    the legacy checksum-free framing (for back-compat tests); both
    versions are auto-detected on read.  Use :meth:`DiskSpool.open` to
    attach to an existing finalized spool file (checkpoint resume,
    fsck).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
        format_version: int = FORMAT_V2,
    ):
        super().__init__(accountant, channel, tracer, metrics)
        if format_version not in (FORMAT_V1, FORMAT_V2):
            raise ValueError(f"unknown spool format version {format_version}")
        self.format_version = format_version
        if path is None:
            fd, path = tempfile.mkstemp(prefix="apt_", suffix=".spool")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._stream_crc = 0
        if format_version == FORMAT_V2:
            self._tmp_path: Optional[str] = path + ".tmp"
            self._writer: Optional[io.BufferedWriter] = open(self._tmp_path, "wb")
            self._writer.write(_HEADER.pack(MAGIC, FORMAT_V2, 0))
        else:
            self._tmp_path = None
            self._writer = open(path, "wb")

    # -- attach to an existing file ---------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
        metrics=None,
    ) -> "DiskSpool":
        """Attach (read-only) to an existing finalized spool file.

        Sniffs the format version, verifies the v2 footer, and fills
        ``n_records``/``data_bytes`` from it; v1 files get counts by a
        framing walk (no checksums to verify).
        """
        spool = cls.__new__(cls)
        Spool.__init__(spool, accountant, channel, tracer, metrics)
        spool.path = path
        spool._owns_file = False
        spool._writer = None
        spool._tmp_path = None
        spool._stream_crc = 0
        spool._finalized = True
        if not os.path.exists(path):
            raise spool._corrupt("spool file missing", reason="truncated")
        with open(path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            spool.format_version = spool._sniff_version(f, size)
            if spool.format_version == FORMAT_V2:
                footer = spool._read_footer(f, size)
                spool.n_records = footer.n_records
                spool.data_bytes = footer.data_bytes
                spool._stream_crc = footer.stream_crc
            else:
                n, nbytes = 0, 0
                for blob in spool._iter_v1_forward(f, size):
                    n += 1
                    nbytes += len(blob)
                spool.n_records = n
                spool.data_bytes = nbytes
        return spool

    # -- writing ----------------------------------------------------------

    def _write_blob(self, blob: bytes) -> None:
        if self._writer is None:
            raise EvaluationError(f"spool {self.channel!r} is not open for writing")
        if self.format_version == FORMAT_V2:
            crc = zlib.crc32(blob)
            self._writer.write(_REC_HEAD.pack(len(blob), crc))
            self._writer.write(blob)
            self._writer.write(_REC_TAIL.pack(crc, len(blob)))
            self._stream_crc = zlib.crc32(blob, self._stream_crc)
        else:
            self._writer.write(_LEN.pack(len(blob)))
            self._writer.write(blob)
            self._writer.write(_LEN.pack(len(blob)))

    def finalize(self) -> None:
        if self._writer is not None:
            if self.format_version == FORMAT_V2:
                self._writer.write(
                    _footer_bytes(self.n_records, self.data_bytes, self._stream_crc)
                )
                self._writer.flush()
                os.fsync(self._writer.fileno())
                self._writer.close()
                self._writer = None
                os.replace(self._tmp_path, self.path)
                self._tmp_path = None
            else:
                self._writer.close()
                self._writer = None
        super().finalize()

    # -- format sniffing ---------------------------------------------------

    def _sniff_version(self, f, size: int) -> int:
        if size >= _HEADER.size:
            f.seek(0)
            magic, version, _flags = _HEADER.unpack(f.read(_HEADER.size))
            if magic == MAGIC:
                if version != FORMAT_V2:
                    raise self._corrupt(
                        f"unsupported spool format version {version}",
                        byte_offset=0,
                        reason="header",
                    )
                return FORMAT_V2
        return FORMAT_V1

    def _read_footer(self, f, size: int) -> SpoolFooter:
        """Read and verify the sealed v2 footer (raises on any damage)."""
        if size < _HEADER.size + _FOOTER.size:
            raise self._corrupt(
                f"file too short for a sealed spool ({size} bytes)",
                byte_offset=size,
                reason="truncated",
            )
        f.seek(size - _FOOTER.size)
        raw = f.read(_FOOTER.size)
        magic, n_records, data_bytes, stream_crc, footer_crc = _FOOTER.unpack(raw)
        if magic != FOOTER_MAGIC:
            raise self._corrupt(
                "missing footer seal (truncated file or crash before finalize)",
                byte_offset=size - _FOOTER.size,
                reason="footer",
            )
        if zlib.crc32(raw[: _FOOTER.size - 4]) != footer_crc:
            raise self._corrupt(
                "footer checksum mismatch",
                byte_offset=size - _FOOTER.size,
                reason="footer",
            )
        expected = (
            _HEADER.size
            + data_bytes
            + RECORD_OVERHEAD[FORMAT_V2] * n_records
            + _FOOTER.size
        )
        if expected != size:
            raise self._corrupt(
                f"footer inconsistent with file size "
                f"({size} bytes on disk, {expected} sealed)",
                byte_offset=size - _FOOTER.size,
                reason="footer",
            )
        return SpoolFooter(n_records, data_bytes, stream_crc)

    # -- forward reading ---------------------------------------------------

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            if self._sniff_version(f, size) == FORMAT_V2:
                yield from self._iter_v2_forward(f, size)
            else:
                yield from self._iter_v1_forward(f, size)

    def _iter_v2_forward(self, f, size: int) -> Iterator[bytes]:
        footer = self._read_footer(f, size)
        data_end = size - _FOOTER.size
        pos = _HEADER.size
        f.seek(pos)
        index = 0
        crc = 0
        overhead = RECORD_OVERHEAD[FORMAT_V2]
        while pos < data_end:
            head = f.read(_REC_HEAD.size)
            if len(head) != _REC_HEAD.size:
                raise self._corrupt(
                    "record header truncated",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            length, want_crc = _REC_HEAD.unpack(head)
            if length > data_end - pos - overhead:
                raise self._corrupt(
                    f"record length {length} overruns the sealed data region",
                    record_index=index, byte_offset=pos, reason="framing",
                )
            blob = f.read(length)
            if len(blob) != length:
                raise self._corrupt(
                    "record payload truncated",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            if zlib.crc32(blob) != want_crc:
                raise self._corrupt(
                    "record checksum mismatch (bit rot or torn write)",
                    record_index=index, byte_offset=pos, reason="checksum",
                )
            tail = f.read(_REC_TAIL.size)
            if len(tail) != _REC_TAIL.size:
                raise self._corrupt(
                    "record trailer truncated",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            tail_crc, tail_len = _REC_TAIL.unpack(tail)
            if tail_len != length or tail_crc != want_crc:
                raise self._corrupt(
                    "record head/tail framing mismatch",
                    record_index=index, byte_offset=pos, reason="framing",
                )
            crc = zlib.crc32(blob, crc)
            yield blob
            index += 1
            pos += overhead + length
        if index != footer.n_records:
            raise self._corrupt(
                f"footer promises {footer.n_records} records, walked {index}",
                record_index=index, byte_offset=pos, reason="footer",
            )
        if crc != footer.stream_crc:
            raise self._corrupt(
                "whole-file stream checksum mismatch",
                record_index=index, byte_offset=pos, reason="footer",
            )

    def _iter_v1_forward(self, f, size: int) -> Iterator[bytes]:
        f.seek(0)
        pos = 0
        index = 0
        while True:
            head = f.read(_LEN.size)
            if not head:
                return
            if len(head) != _LEN.size:
                raise self._corrupt(
                    "truncated record header",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            (length,) = _LEN.unpack(head)
            if length > size - pos - 2 * _LEN.size:
                raise self._corrupt(
                    f"record length {length} overruns the file (truncated spool)",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            blob = f.read(length)
            if len(blob) != length:
                raise self._corrupt(
                    "truncated spool",
                    record_index=index, byte_offset=pos, reason="truncated",
                )
            trailer = f.read(_LEN.size)
            if len(trailer) != _LEN.size or _LEN.unpack(trailer)[0] != length:
                raise self._corrupt(
                    "truncated or corrupt spool (record trailer mismatch)",
                    record_index=index, byte_offset=pos, reason="framing",
                )
            yield blob
            index += 1
            pos += 2 * _LEN.size + length

    # -- backward reading --------------------------------------------------

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            if self._sniff_version(f, size) == FORMAT_V2:
                yield from self._iter_v2_backward(f, size)
            else:
                yield from self._iter_v1_backward(f, size)

    def _iter_v2_backward(self, f, size: int) -> Iterator[bytes]:
        footer = self._read_footer(f, size)
        pos = size - _FOOTER.size  # end of the data region
        overhead = RECORD_OVERHEAD[FORMAT_V2]
        seen = 0
        while pos > _HEADER.size:
            index = footer.n_records - seen - 1  # forward-order index
            f.seek(pos - _REC_TAIL.size)
            tail_crc, length = _REC_TAIL.unpack(f.read(_REC_TAIL.size))
            start = pos - overhead - length
            if start < _HEADER.size:
                raise self._corrupt(
                    f"trailing length {length} underruns the header",
                    record_index=index, byte_offset=pos - _REC_TAIL.size,
                    reason="framing",
                )
            f.seek(start)
            head_len, head_crc = _REC_HEAD.unpack(f.read(_REC_HEAD.size))
            if head_len != length or head_crc != tail_crc:
                raise self._corrupt(
                    "record head/tail framing mismatch",
                    record_index=index, byte_offset=start, reason="framing",
                )
            blob = f.read(length)
            if len(blob) != length or zlib.crc32(blob) != head_crc:
                raise self._corrupt(
                    "record checksum mismatch (bit rot or torn write)",
                    record_index=index, byte_offset=start, reason="checksum",
                )
            yield blob
            seen += 1
            pos = start
        if seen != footer.n_records:
            raise self._corrupt(
                f"footer promises {footer.n_records} records, walked {seen}",
                record_index=None, byte_offset=pos, reason="footer",
            )

    def _iter_v1_backward(self, f, size: int) -> Iterator[bytes]:
        pos = size
        while pos > 0:
            if pos < 2 * _LEN.size:
                raise self._corrupt(
                    "corrupt spool (dangling bytes before first record)",
                    byte_offset=pos, reason="framing",
                )
            f.seek(pos - _LEN.size)
            (length,) = _LEN.unpack(f.read(_LEN.size))
            start = pos - 2 * _LEN.size - length
            if start < 0:
                raise self._corrupt(
                    f"trailing length {length} underruns the file",
                    byte_offset=pos - _LEN.size, reason="framing",
                )
            # Cross-check the *leading* length word against the trailer —
            # a mismatched header must not go undetected just because we
            # approached the record from the right.
            f.seek(start)
            (head_length,) = _LEN.unpack(f.read(_LEN.size))
            if head_length != length:
                raise self._corrupt(
                    f"record head/tail length mismatch "
                    f"({head_length} vs {length})",
                    byte_offset=start, reason="framing",
                )
            blob = f.read(length)
            if len(blob) != length:
                raise self._corrupt(
                    "truncated spool",
                    byte_offset=start, reason="truncated",
                )
            yield blob
            pos = start

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._tmp_path is not None and os.path.exists(self._tmp_path):
            os.unlink(self._tmp_path)
            self._tmp_path = None
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def file_bytes(self) -> int:
        """Actual on-disk size, including framing, header, and footer."""
        per_record = RECORD_OVERHEAD[self.format_version]
        fixed = (
            _HEADER.size + _FOOTER.size
            if self.format_version == FORMAT_V2
            else 0
        )
        return self.data_bytes + per_record * self.n_records + fixed


# ---------------------------------------------------------------------------
# fsck: non-raising scan + longest-valid-prefix salvage
# ---------------------------------------------------------------------------


@dataclass
class SpoolScanReport:
    """Outcome of a tolerant full sweep over a spool file (``repro fsck``)."""

    path: str
    version: int = FORMAT_V2
    file_bytes: int = 0
    #: Records whose framing + checksum verified, scanning forward.
    n_valid: int = 0
    #: Payload bytes across the valid prefix.
    valid_data_bytes: int = 0
    #: File offset one past the last valid record (start of the damage,
    #: or of the footer when the file is clean).
    valid_end_offset: int = 0
    #: Footer-sealed record count (None for v1 / unsealed files).
    sealed_records: Optional[int] = None
    footer_ok: bool = False
    #: The first integrity failure met, if any.
    error: Optional[SpoolCorruptionError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def render(self) -> str:
        lines = [
            f"fsck {self.path}",
            f"  format      v{self.version}"
            + ("" if self.version == FORMAT_V1 else
               f" (footer {'sealed' if self.footer_ok else 'BAD'})"),
            f"  file bytes  {self.file_bytes:,}",
            f"  records     {self.n_valid:,} valid"
            + (f" / {self.sealed_records:,} sealed"
               if self.sealed_records is not None else ""),
            f"  payload     {self.valid_data_bytes:,} bytes over the valid prefix",
        ]
        if self.error is None:
            lines.append("  status      clean")
        else:
            lines.append(
                f"  status      CORRUPT at {self.error.locus()}"
                f" [{self.error.reason}]: {self.error}"
            )
        return "\n".join(lines)


def scan_spool(path: str, metrics=None, tracer=None) -> SpoolScanReport:
    """Sweep ``path`` forward, verifying every record; never raises.

    Returns a :class:`SpoolScanReport` whose ``error`` (if any) is the
    first :class:`SpoolCorruptionError` encountered, and whose
    ``n_valid``/``valid_end_offset`` describe the longest
    checksum-valid prefix — the unit :func:`salvage_spool` recovers.
    """
    report = SpoolScanReport(path=path)
    spool = DiskSpool.__new__(DiskSpool)
    Spool.__init__(spool, None, os.path.basename(path), tracer, metrics)
    spool.path = path
    spool._owns_file = False
    spool._writer = None
    spool._tmp_path = None
    spool._finalized = True
    try:
        size = os.path.getsize(path)
    except OSError:
        report.error = spool._corrupt("spool file missing", reason="truncated")
        return report
    report.file_bytes = size
    with open(path, "rb") as f:
        try:
            version = spool._sniff_version(f, size)
        except SpoolCorruptionError as exc:
            report.error = exc
            return report
        report.version = version
        spool.format_version = version
        if version == FORMAT_V2:
            report.valid_end_offset = _HEADER.size
            try:
                footer = spool._read_footer(f, size)
                report.sealed_records = footer.n_records
                report.footer_ok = True
            except SpoolCorruptionError as exc:
                report.error = exc
            # Walk records tolerantly even under a bad footer, bounding
            # the data region by the footer when it is intact.
            data_end = size - _FOOTER.size if report.footer_ok else size
            walker = _walk_v2_records(spool, f, data_end)
        else:
            walker = _walk_v1_records(spool, f, size)
        try:
            for offset_after, blob in walker:
                report.n_valid += 1
                report.valid_data_bytes += len(blob)
                report.valid_end_offset = offset_after
        except SpoolCorruptionError as exc:
            if report.error is None:
                report.error = exc
        if (
            report.error is None
            and report.sealed_records is not None
            and report.n_valid != report.sealed_records
        ):
            report.error = spool._corrupt(
                f"footer promises {report.sealed_records} records, "
                f"walked {report.n_valid}",
                record_index=report.n_valid,
                byte_offset=report.valid_end_offset,
                reason="footer",
            )
    return report


def _walk_v2_records(spool, f, data_end) -> Iterator[Tuple[int, bytes]]:
    pos = _HEADER.size
    f.seek(pos)
    index = 0
    overhead = RECORD_OVERHEAD[FORMAT_V2]
    while pos < data_end:
        head = f.read(_REC_HEAD.size)
        if len(head) != _REC_HEAD.size:
            raise spool._corrupt(
                "record header truncated",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        length, want_crc = _REC_HEAD.unpack(head)
        if length > data_end - pos - overhead:
            raise spool._corrupt(
                f"record length {length} overruns the data region",
                record_index=index, byte_offset=pos, reason="framing",
            )
        blob = f.read(length)
        tail = f.read(_REC_TAIL.size)
        if len(blob) != length or len(tail) != _REC_TAIL.size:
            raise spool._corrupt(
                "record truncated",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        tail_crc, tail_len = _REC_TAIL.unpack(tail)
        if tail_len != length or tail_crc != want_crc:
            raise spool._corrupt(
                "record head/tail framing mismatch",
                record_index=index, byte_offset=pos, reason="framing",
            )
        if zlib.crc32(blob) != want_crc:
            raise spool._corrupt(
                "record checksum mismatch",
                record_index=index, byte_offset=pos, reason="checksum",
            )
        pos += overhead + length
        yield pos, blob
        index += 1


def _walk_v1_records(spool, f, size) -> Iterator[Tuple[int, bytes]]:
    f.seek(0)
    pos = 0
    index = 0
    while pos < size:
        head = f.read(_LEN.size)
        if len(head) != _LEN.size:
            raise spool._corrupt(
                "truncated record header",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        (length,) = _LEN.unpack(head)
        if length > size - pos - 2 * _LEN.size:
            raise spool._corrupt(
                f"record length {length} overruns the file",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        blob = f.read(length)
        trailer = f.read(_LEN.size)
        if len(blob) != length or len(trailer) != _LEN.size:
            raise spool._corrupt(
                "truncated spool",
                record_index=index, byte_offset=pos, reason="truncated",
            )
        if _LEN.unpack(trailer)[0] != length:
            raise spool._corrupt(
                "record trailer mismatch",
                record_index=index, byte_offset=pos, reason="framing",
            )
        pos += 2 * _LEN.size + length
        yield pos, blob
        index += 1


def salvage_spool(
    src: str, dst: str, metrics=None, tracer=None
) -> SpoolScanReport:
    """Recover the longest checksum-valid prefix of ``src`` into ``dst``.

    ``dst`` is written as a fresh sealed v2 spool (atomic finalize), so
    a salvaged file always verifies clean afterwards.  Returns the scan
    report of the *source*; ``report.n_valid`` records were recovered.
    """
    report = scan_spool(src, metrics=metrics, tracer=tracer)
    out = DiskSpool(dst, channel=os.path.basename(dst), tracer=tracer,
                    metrics=metrics)
    spool = DiskSpool.__new__(DiskSpool)
    Spool.__init__(spool, None, os.path.basename(src), None, None)
    spool.path = src
    spool._owns_file = False
    spool._writer = None
    spool._tmp_path = None
    spool._finalized = True
    spool.format_version = report.version
    recovered = 0
    try:
        size = report.file_bytes
        with open(src, "rb") as f:
            if report.version == FORMAT_V2:
                data_end = size - _FOOTER.size if report.footer_ok else size
                walker = _walk_v2_records(spool, f, data_end)
            else:
                walker = _walk_v1_records(spool, f, size)
            try:
                for _, blob in walker:
                    out.append_blob(blob)
                    recovered += 1
                    if recovered >= report.n_valid:
                        break
            except SpoolCorruptionError:
                pass  # the prefix up to the damage is already copied
        out.finalize()
    except BaseException:
        out.close()
        raise
    if metrics is not None:
        metrics.counter("robust.spool_records_salvaged").inc(recovered)
        if not report.ok:
            metrics.counter("robust.spool_salvage_runs").inc()
    if tracer is not None:
        tracer.instant(
            "spool.salvage", cat="robust", src=src, dst=dst,
            recovered=recovered,
        )
    return report
