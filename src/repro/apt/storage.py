"""Spool files: the APT intermediate files.

A *spool* is written strictly sequentially (append) and then read
sequentially either **forward or backward** — the whole §II evaluation
paradigm rests on reading the previous pass's output file backwards.
:class:`DiskSpool` keeps records on real secondary storage in a
length-prefixed-both-ends format (the trailing length makes backward
reads a pair of seeks, the way a tape or disk file would be read in
reverse); :class:`MemorySpool` is the fast equivalent for tests.  Both
charge every transfer to an :class:`~repro.util.iotrack.IOAccountant`.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import tempfile
from typing import Any, Iterator, List, Optional

from repro.errors import EvaluationError
from repro.util.iotrack import IOAccountant

_LEN = struct.Struct("<I")


class Spool:
    """Abstract spool of pickled records.

    ``tracer`` (a :class:`repro.obs.Tracer`, or None for the default
    zero-overhead path) receives one ``spool.write``/``spool.read``
    instant event per record, tagged with the channel and byte size —
    the event-level view of the paper's I/O-boundedness claim.
    """

    def __init__(
        self,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
    ):
        self.accountant = accountant
        self.channel = channel
        self.tracer = tracer
        self.n_records = 0
        self.data_bytes = 0
        self._finalized = False

    # -- writing ----------------------------------------------------------

    def append(self, record: Any) -> None:
        if self._finalized:
            raise EvaluationError(f"spool {self.channel!r} already finalized")
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_blob(blob)
        self.n_records += 1
        self.data_bytes += len(blob)
        if self.accountant is not None:
            self.accountant.charge_write(len(blob), self.channel)
        if self.tracer is not None:
            self.tracer.instant(
                "spool.write", cat="io", channel=self.channel, nbytes=len(blob)
            )

    def finalize(self) -> None:
        """End the writing phase; the spool becomes readable."""
        self._finalized = True

    # -- reading ----------------------------------------------------------

    def read_forward(self) -> Iterator[Any]:
        self._require_finalized()
        for blob in self._iter_blobs_forward():
            if self.accountant is not None:
                self.accountant.charge_read(len(blob), self.channel)
            if self.tracer is not None:
                self.tracer.instant(
                    "spool.read", cat="io", channel=self.channel, nbytes=len(blob)
                )
            yield pickle.loads(blob)

    def read_backward(self) -> Iterator[Any]:
        self._require_finalized()
        for blob in self._iter_blobs_backward():
            if self.accountant is not None:
                self.accountant.charge_read(len(blob), self.channel)
            if self.tracer is not None:
                self.tracer.instant(
                    "spool.read", cat="io", channel=self.channel, nbytes=len(blob)
                )
            yield pickle.loads(blob)

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise EvaluationError(
                f"spool {self.channel!r} read before writing finished"
            )

    # -- to implement ------------------------------------------------------

    def _write_blob(self, blob: bytes) -> None:
        raise NotImplementedError

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        raise NotImplementedError

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Spool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySpool(Spool):
    """Spool held in memory (still serialized, still accounted)."""

    def __init__(
        self,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
    ):
        super().__init__(accountant, channel, tracer)
        self._blobs: List[bytes] = []

    def _write_blob(self, blob: bytes) -> None:
        self._blobs.append(blob)

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        return iter(self._blobs)

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        return iter(reversed(self._blobs))


class DiskSpool(Spool):
    """Spool on real secondary storage.

    Record format: ``<u32 length> <blob> <u32 length>``.  The trailing
    length lets a backward reader hop record to record with two seeks,
    never loading more than one record into memory.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        accountant: Optional[IOAccountant] = None,
        channel: str = "",
        tracer=None,
    ):
        super().__init__(accountant, channel, tracer)
        if path is None:
            fd, path = tempfile.mkstemp(prefix="apt_", suffix=".spool")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._writer: Optional[io.BufferedWriter] = open(path, "wb")

    def _write_blob(self, blob: bytes) -> None:
        if self._writer is None:
            raise EvaluationError(f"spool {self.channel!r} is not open for writing")
        self._writer.write(_LEN.pack(len(blob)))
        self._writer.write(blob)
        self._writer.write(_LEN.pack(len(blob)))

    def finalize(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        super().finalize()

    def _iter_blobs_forward(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            while True:
                head = f.read(_LEN.size)
                if not head:
                    return
                (length,) = _LEN.unpack(head)
                blob = f.read(length)
                if len(blob) != length:
                    raise EvaluationError(f"truncated spool {self.channel!r}")
                trailer = f.read(_LEN.size)
                if len(trailer) != _LEN.size or _LEN.unpack(trailer)[0] != length:
                    raise EvaluationError(
                        f"truncated or corrupt spool {self.channel!r} "
                        "(record trailer mismatch)"
                    )
                yield blob

    def _iter_blobs_backward(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            f.seek(0, os.SEEK_END)
            pos = f.tell()
            while pos > 0:
                f.seek(pos - _LEN.size)
                (length,) = _LEN.unpack(f.read(_LEN.size))
                start = pos - 2 * _LEN.size - length
                if start < 0:
                    raise EvaluationError(f"corrupt spool {self.channel!r}")
                f.seek(start + _LEN.size)
                blob = f.read(length)
                yield blob
                pos = start

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def file_bytes(self) -> int:
        """Actual on-disk size, including record framing."""
        return self.data_bytes + 2 * _LEN.size * self.n_records
