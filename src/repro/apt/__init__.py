"""The Attributed Parse Tree and its secondary-storage representation.

§II: the APT is stored *linearized* in intermediate files; a pass reads
nodes in prefix order and writes them in postfix order, and "if the
output file of a left-to-right pass is read backwards it can be the
input file for a right-to-left pass".  :mod:`repro.apt.storage`
provides disk-backed and in-memory spool files readable in both
directions (with I/O accounting); :mod:`repro.apt.linear` implements
the linearization orders and the reversal invariant;
:mod:`repro.apt.build` turns parser events into the initial APT file
(bottom-up emission for a first right-to-left pass — the strategy
LINGUIST-86 itself uses — or prefix emission for a first left-to-right
pass).
"""

from repro.apt.node import APTNode, estimate_bytes
from repro.apt.codec import RecordCodec
from repro.apt.storage import (
    DEFAULT_SPOOL_MEMORY_BUDGET,
    AdaptiveSpool,
    DiskSpool,
    MemorySpool,
    Spool,
    SpoolScanReport,
    adaptive_spool_factory,
    salvage_spool,
    scan_spool,
)
from repro.apt.linear import (
    iter_bottom_up,
    iter_prefix,
    read_order_for_pass,
)
from repro.apt.build import APTBuilder, default_intrinsics

__all__ = [
    "APTNode",
    "estimate_bytes",
    "RecordCodec",
    "DEFAULT_SPOOL_MEMORY_BUDGET",
    "AdaptiveSpool",
    "DiskSpool",
    "MemorySpool",
    "Spool",
    "SpoolScanReport",
    "adaptive_spool_factory",
    "salvage_spool",
    "scan_spool",
    "iter_bottom_up",
    "iter_prefix",
    "read_order_for_pass",
    "APTBuilder",
    "default_intrinsics",
]
