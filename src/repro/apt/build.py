"""Building the initial APT file from parser events.

The paper's two first-linearization strategies (§II):

* **bottom-up** — "for the parser to emit tree nodes in bottom-up
  order": each terminal node is emitted at its shift, each interior
  node (preceded by its limb node) at its reduce.  The resulting file
  is the left-to-right postfix order, "identical to what would have
  been created by a left-to-right attribute evaluator"; the first
  evaluation pass is right-to-left and reads it backwards.  LINGUIST-86
  itself uses this method, and :class:`APTBuilder` streams it with only
  a parse-stack's worth of memory.
* **prefix** — "like a recursive descent parser": the file is the
  left-to-right prefix order and the first pass is left-to-right.
  :meth:`APTBuilder.emit_prefix` produces it from the retained tree.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.ag.model import AttributeGrammar, SymbolKind
from repro.apt.linear import TreeNode, iter_prefix
from repro.apt.node import APTNode
from repro.apt.storage import Spool
from repro.errors import EvaluationError
from repro.lalr.grammar import EOF_SYMBOL, Production as CFGProduction
from repro.lalr.parser import ParseListener
from repro.regex.scanner import Token

IntrinsicFn = Callable[[Token, str, str], object]


def default_intrinsics(token: Token, symbol: str, attr_name: str) -> object:
    """Conventional intrinsic attribute values set by the parser (§IV:
    "the name-table-index of terminal symbols and the location in the
    source").  Recognized names:

    ``LINE``/``COL`` — source coordinates; ``NAME``/``SYM$NAME``/``OBJ``
    — the name-table index; ``TEXT`` — the lexeme; anything else — the
    lexeme as an int when it looks like one, else the lexeme itself.
    """
    upper = attr_name.upper()
    if upper == "LINE":
        return token.location.line
    if upper in ("COL", "COLUMN"):
        return token.location.column
    if upper in ("NAME", "SYM$NAME", "OBJ", "NAMEINDEX"):
        return token.name_index
    if upper == "TEXT":
        return token.text
    text = token.text
    if text.isdigit():
        return int(text)
    return text


class APTBuilder(ParseListener):
    """Parser listener producing the initial APT.

    Pass a ``spool`` to stream the bottom-up file; set ``build_tree``
    to retain an in-memory :class:`TreeNode` (needed by the oracle
    evaluator and the prefix strategy).
    """

    def __init__(
        self,
        ag: AttributeGrammar,
        spool: Optional[Spool] = None,
        intrinsic_fn: IntrinsicFn = default_intrinsics,
        build_tree: bool = False,
        tracer=None,
        metrics=None,
    ):
        self.ag = ag
        self.spool = spool
        self.intrinsic_fn = intrinsic_fn
        self.build_tree = build_tree
        self.tracer = tracer
        self._stack: List[TreeNode] = []
        self.root: Optional[TreeNode] = None
        self.n_nodes = 0
        self.total_node_bytes = 0
        # Telemetry: counters are resolved once, charged per emitted node.
        self._c_nodes = metrics.counter("apt.nodes") if metrics is not None else None
        self._c_bytes = (
            metrics.counter("apt.node_bytes") if metrics is not None else None
        )

    # -- parser events -----------------------------------------------------

    def on_shift(self, token: Token) -> None:
        if token.kind == EOF_SYMBOL:
            return
        sym = self.ag.symbols.get(token.kind)
        if sym is None or sym.kind is not SymbolKind.TERMINAL:
            raise EvaluationError(
                f"parser shifted {token.kind!r}, which is not a terminal of "
                f"attribute grammar {self.ag.name!r}"
            )
        attrs: Dict[str, object] = {}
        for attr in sym.intrinsic:
            attrs[attr.name] = self.intrinsic_fn(token, sym.name, attr.name)
        node = APTNode(symbol=sym.name, production=None, attrs=attrs)
        self._emit(node)
        self._stack.append(TreeNode(node))

    def on_reduce(self, cfg_prod: CFGProduction) -> None:
        if cfg_prod.index == 0:
            return  # the $accept production is synthetic
        prod = self.ag.productions[cfg_prod.index - 1]
        if prod.lhs != cfg_prod.lhs or prod.rhs != cfg_prod.rhs:
            raise EvaluationError(
                f"parser production {cfg_prod} does not match attribute "
                f"grammar production {prod} — the same input file must drive "
                "both tools"
            )
        n = len(prod.rhs)
        children = self._stack[len(self._stack) - n :] if n else []
        del self._stack[len(self._stack) - n :]
        limb_node: Optional[APTNode] = None
        if prod.limb:
            limb_node = APTNode(symbol=prod.limb, production=prod.index, is_limb=True)
            self._emit(limb_node)
        node = APTNode(symbol=prod.lhs, production=prod.index)
        self._emit(node)
        if self.build_tree:
            self._stack.append(TreeNode(node, list(children), limb_node))
        else:
            # Streaming mode: drop child links so memory stays one
            # parse-stack deep, the way the real tool worked.
            self._stack.append(TreeNode(node, [], limb_node))

    # -- results -------------------------------------------------------------

    def finish(self) -> None:
        """Validate the parse completed and finalize outputs."""
        if len(self._stack) != 1:
            raise EvaluationError(
                f"APT build ended with {len(self._stack)} tree fragments; "
                "the parse did not reduce to the start symbol"
            )
        self.root = self._stack[0]
        if self.root.node.symbol != self.ag.start:
            raise EvaluationError(
                f"APT root is {self.root.node.symbol!r}, expected start "
                f"symbol {self.ag.start!r}"
            )
        if self.spool is not None:
            self.spool.finalize()
        if self.tracer is not None:
            self.tracer.instant(
                "apt.built",
                cat="apt",
                n_nodes=self.n_nodes,
                total_bytes=self.total_node_bytes,
            )
        if not self.build_tree:
            self.root = None  # streaming mode retains no tree

    def _emit(self, node: APTNode) -> None:
        self.n_nodes += 1
        nbytes = node.byte_size()
        self.total_node_bytes += nbytes
        if self._c_nodes is not None:
            self._c_nodes.inc()
            self._c_bytes.inc(nbytes)
        if self.spool is not None:
            self.spool.append(
                (node.symbol, node.production, node.attrs, node.is_limb)
            )

    def emit_prefix(self, spool: Spool) -> None:
        """Write the prefix-order initial file (first pass left-to-right)."""
        if self.root is None:
            raise EvaluationError("emit_prefix before finish()")
        from repro.passes.schedule import Direction

        for node in iter_prefix(self.root, Direction.L2R):
            spool.append((node.symbol, node.production, node.attrs, node.is_limb))
        spool.finalize()


def node_from_record(record) -> APTNode:
    """Deserialize one spool record into an APT node."""
    symbol, production, attrs, is_limb = record
    return APTNode(symbol=symbol, production=production, attrs=dict(attrs), is_limb=is_limb)
