"""Compact struct-packed record codec for format-v3 spools.

The per-input economics of §II/§IV are dominated by streaming the APT
through intermediate files, so bytes-per-record is a first-order lever.
Formats v1/v2 pickled every node record (`pickle.dumps` per record,
~100+ bytes for a small node); the v3 codec instead writes a tagged
binary encoding in which **symbol and attribute names are name-table
ids, not strings, on disk** — the same move the paper's overlay 1 makes
for identifiers ("intrinsic attributes … carry name-table indexes"),
now applied to the spool stream itself.

Node records — the 4-tuples ``(symbol, production, attrs, is_limb)``
that :class:`~repro.evalgen.runtime.EvaluatorRuntime` spools — get a
dedicated layout::

    'R'  u32 symbol_id  i32 production(-1=None)  u8 is_limb  u16 n_attrs
         ( u32 attr_name_id  <value> )*

Values use one tag byte each:

====  =======================================================
tag   encoding
====  =======================================================
'N'   None
'T'   True          (exact ``bool`` — checked before int)
'F'   False
'I'   i64 two's-complement little-endian (``<q>``)
'D'   float64 (``<d>``)
'Y'   interned string: u32 name-table id (short strings)
'S'   inline string: u32 byte length + UTF-8 bytes
'U'   tuple:  u32 count + items
'L'   list:   u32 count + items
'P'   pickle fallback: u32 byte length + pickle bytes
====  =======================================================

Anything the fast tags cannot represent *exactly* (``CatSeq``, sets,
dicts-as-values, big ints, subclasses) falls back to pickle inside a
``'P'`` frame, so decode is always value- and **type**-faithful — the
differential harness's byte-identity guarantee does not bend.  The
name table is serialized once per spool, in a sealed section before
the footer (see ``apt/storage.py``), amortizing every interned string
across the whole stream.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional, Tuple

from typing import NamedTuple

from repro.util.nametable import NameTable

__all__ = [
    "RecordCodec",
    "RecordAddress",
    "parse_address",
    "serialize_names",
    "deserialize_names",
]


class RecordAddress(NamedTuple):
    """Random-access address of one node record in a sealed spool set:
    ``(pass, block, record)`` — which pass's spool, which v3 block
    frame, and which record slot inside that block's payload.  v1/v2
    spools are a single implicit block, so their addresses are always
    ``(pass, 0, record)``.  Rendered ``pass:block:record``."""

    pass_k: int
    block: int
    record: int

    def render(self) -> str:
        return f"{self.pass_k}:{self.block}:{self.record}"


def parse_address(text: str) -> RecordAddress:
    """Parse a ``pass:block:record`` address rendered by
    :meth:`RecordAddress.render`."""
    parts = text.split(":")
    if len(parts) != 3 or not all(p.lstrip("-").isdigit() for p in parts):
        raise ValueError(
            f"bad record address {text!r}; expected pass:block:record"
        )
    return RecordAddress(int(parts[0]), int(parts[1]), int(parts[2]))

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_NODE_HEAD = struct.Struct("<IiBH")  # symbol_id, production, is_limb, n_attrs

#: Strings longer than this are inlined rather than interned — one-off
#: long values (rendered code, listings) must not bloat the name table.
MAX_INTERN_LEN = 64

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class RecordCodec:
    """Encode/decode spool records against a per-spool :class:`NameTable`.

    One codec instance is bound to one spool: the writer side interns
    names as it encodes, and ``serialize_names`` (module function)
    seals the table into the file; the reader side is constructed from
    the deserialized table.
    """

    __slots__ = ("names",)

    def __init__(self, names: Optional[NameTable] = None):
        self.names = names if names is not None else NameTable()

    # -- encoding ----------------------------------------------------------

    def encode(self, record: Any) -> bytes:
        """Encode one record to bytes (node fast path or generic value)."""
        out = bytearray()
        if (
            type(record) is tuple
            and len(record) == 4
            and type(record[0]) is str
            and (record[1] is None or type(record[1]) is int)
            and type(record[2]) is dict
            and type(record[3]) is bool
            and -1 <= (record[1] if record[1] is not None else 0) <= _I64_MAX
        ):
            symbol, production, attrs, is_limb = record
            if all(type(k) is str for k in attrs):
                prod = -1 if production is None else production
                if 0 <= prod <= 0x7FFFFFFF or prod == -1:
                    out.append(0x52)  # 'R'
                    out += _NODE_HEAD.pack(
                        self.names.intern(symbol), prod,
                        1 if is_limb else 0, len(attrs),
                    )
                    for name, value in attrs.items():
                        out += _U32.pack(self.names.intern(name))
                        self._encode_value(value, out)
                    return bytes(out)
        self._encode_value(record, out)
        return bytes(out)

    def _encode_value(self, v: Any, out: bytearray) -> None:
        t = type(v)
        if v is None:
            out.append(0x4E)  # 'N'
        elif t is bool:
            out.append(0x54 if v else 0x46)  # 'T' / 'F'
        elif t is int:
            if _I64_MIN <= v <= _I64_MAX:
                out.append(0x49)  # 'I'
                out += _I64.pack(v)
            else:
                self._encode_pickle(v, out)
        elif t is float:
            out.append(0x44)  # 'D'
            out += _F64.pack(v)
        elif t is str:
            if len(v) <= MAX_INTERN_LEN:
                out.append(0x59)  # 'Y'
                out += _U32.pack(self.names.intern(v))
            else:
                raw = v.encode("utf-8")
                out.append(0x53)  # 'S'
                out += _U32.pack(len(raw))
                out += raw
        elif t is tuple:
            out.append(0x55)  # 'U'
            out += _U32.pack(len(v))
            for item in v:
                self._encode_value(item, out)
        elif t is list:
            out.append(0x4C)  # 'L'
            out += _U32.pack(len(v))
            for item in v:
                self._encode_value(item, out)
        else:
            self._encode_pickle(v, out)

    @staticmethod
    def _encode_pickle(v: Any, out: bytearray) -> None:
        raw = pickle.dumps(v, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(0x50)  # 'P'
        out += _U32.pack(len(raw))
        out += raw

    # -- decoding ----------------------------------------------------------

    def decode(self, blob: bytes) -> Any:
        """Decode one record previously produced by :meth:`encode`."""
        if not blob:
            raise ValueError("empty record payload")
        if blob[0] == 0x52:  # 'R' node record
            sym_id, prod, is_limb, n_attrs = _NODE_HEAD.unpack_from(blob, 1)
            pos = 1 + _NODE_HEAD.size
            attrs = {}
            spelling = self.names.spelling
            for _ in range(n_attrs):
                (name_id,) = _U32.unpack_from(blob, pos)
                pos += 4
                value, pos = self._decode_value(blob, pos)
                attrs[spelling(name_id)] = value
            if pos != len(blob):
                raise ValueError(
                    f"trailing garbage after node record "
                    f"({len(blob) - pos} bytes)"
                )
            return (
                spelling(sym_id),
                None if prod == -1 else prod,
                attrs,
                bool(is_limb),
            )
        value, pos = self._decode_value(blob, 0)
        if pos != len(blob):
            raise ValueError(
                f"trailing garbage after value ({len(blob) - pos} bytes)"
            )
        return value

    def _decode_value(self, blob: bytes, pos: int) -> Tuple[Any, int]:
        tag = blob[pos]
        pos += 1
        if tag == 0x4E:
            return None, pos
        if tag == 0x54:
            return True, pos
        if tag == 0x46:
            return False, pos
        if tag == 0x49:
            return _I64.unpack_from(blob, pos)[0], pos + 8
        if tag == 0x44:
            return _F64.unpack_from(blob, pos)[0], pos + 8
        if tag == 0x59:
            (name_id,) = _U32.unpack_from(blob, pos)
            return self.names.spelling(name_id), pos + 4
        if tag == 0x53:
            (length,) = _U32.unpack_from(blob, pos)
            pos += 4
            return blob[pos:pos + length].decode("utf-8"), pos + length
        if tag == 0x55 or tag == 0x4C:
            (count,) = _U32.unpack_from(blob, pos)
            pos += 4
            items: List[Any] = []
            for _ in range(count):
                item, pos = self._decode_value(blob, pos)
                items.append(item)
            return (tuple(items) if tag == 0x55 else items), pos
        if tag == 0x50:
            (length,) = _U32.unpack_from(blob, pos)
            pos += 4
            return pickle.loads(blob[pos:pos + length]), pos + length
        raise ValueError(f"unknown value tag {tag:#04x} at offset {pos - 1}")


# ---------------------------------------------------------------------------
# name-table section (de)serialization
# ---------------------------------------------------------------------------


def serialize_names(names: NameTable) -> bytes:
    """Flatten a name table into the v3 name-table section payload:
    ``u32 count`` then ``(u32 len, utf-8 bytes)`` per name, in id order
    (the sentinel id 0 is implicit and never stored)."""
    out = bytearray(_U32.pack(len(names)))
    for name in names:
        raw = name.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw
    return bytes(out)


def deserialize_names(payload: bytes) -> NameTable:
    """Rebuild a name table from its serialized section payload."""
    names = NameTable()
    (count,) = _U32.unpack_from(payload, 0)
    pos = 4
    for i in range(count):
        if pos + 4 > len(payload):
            raise ValueError(f"name-table entry {i} header truncated")
        (length,) = _U32.unpack_from(payload, pos)
        pos += 4
        if pos + length > len(payload):
            raise ValueError(f"name-table entry {i} payload truncated")
        names.intern(payload[pos:pos + length].decode("utf-8"))
        pos += length
    if pos != len(payload):
        raise ValueError(
            f"trailing garbage after name table ({len(payload) - pos} bytes)"
        )
    return names
