"""Linearization orders and the §II reversal invariant.

For a tree node ``N`` with children ``C1 … Cn`` and limb ``L(N)``, a
left-to-right pass *writes* ``W(N) = W(C1) C1 … W(Cn) Cn L(N)`` and the
driver writes the root last, so a complete output file is
``W(root) root``.  Read backwards, that same file is exactly the
prefix order a right-to-left pass consumes: root first, then for each
subtree the limb node followed by the children right-to-left.  The
symmetric claim holds with directions exchanged.

These functions compute the orders from an in-memory tree; the real
evaluators never materialize the tree — they produce and consume the
same sequences through the spool files.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.apt.node import APTNode
from repro.passes.schedule import Direction


class TreeNode:
    """A transient in-memory APT used by tests, the oracle evaluator, and
    the prefix-emission strategy."""

    __slots__ = ("node", "children", "limb")

    def __init__(
        self,
        node: APTNode,
        children: Optional[List["TreeNode"]] = None,
        limb: Optional[APTNode] = None,
    ):
        self.node = node
        self.children = children or []
        self.limb = limb

    @property
    def is_leaf(self) -> bool:
        return not self.children and self.limb is None


def iter_bottom_up(root: TreeNode, direction: Direction = Direction.L2R) -> Iterator[APTNode]:
    """The write (postfix) order of a pass running ``direction``.

    This is also what a bottom-up parser emits (for L2R): the initial
    APT file of the paper's first strategy.

    Implemented with an explicit stack: APTs are as deep as the source
    program (statement lists chain linearly), and a recursive
    ``yield from`` chain would cost O(depth) per yielded node — the
    iterative walk keeps linearization O(1) amortized per node.
    """
    r2l = direction is Direction.R2L
    # Each subtree yields: children's subtrees (in visit order), then
    # its limb, then its own node; the root is no exception.
    stack = [(root, False)]
    while stack:
        tree, expanded = stack.pop()
        if expanded:
            if tree.limb is not None:
                yield tree.limb
            yield tree.node
            continue
        stack.append((tree, True))
        children = tree.children
        # Pop order reverses push order, so push the visit order backwards.
        for child in (children if r2l else reversed(children)):
            stack.append((child, False))
    # (root's own node is produced by its expanded phase above)


def iter_prefix(root: TreeNode, direction: Direction = Direction.L2R) -> Iterator[APTNode]:
    """The read (prefix) order of a pass running ``direction``: node,
    limb, then each child's prefix order in visit order.

    Iterative for the same reason as :func:`iter_bottom_up`: prefix
    emission is the hot path of every translation whose first pass runs
    left-to-right, and recursion would pay O(depth) per node.
    """
    r2l = direction is Direction.R2L
    stack = [root]
    while stack:
        tree = stack.pop()
        yield tree.node
        if tree.limb is not None:
            yield tree.limb
        children = tree.children
        # Pop order reverses push order, so push the visit order backwards.
        for child in (children if r2l else reversed(children)):
            stack.append(child)


def read_order_for_pass(
    pass_direction: Direction, previous_output_direction: Direction
) -> str:
    """How a pass must read its input spool.

    A pass's output spool is in its own postfix order; the next pass
    runs the opposite direction and reads it ``backward``.  Only the
    prefix-emission first strategy produces a file read ``forward``.
    """
    if pass_direction is previous_output_direction:
        return "forward"  # prefix file emitted for the same direction
    return "backward"
