"""LINGUIST-86, reproduced: a translator-writing system based on
attribute grammars (Farrow, PLDI 1982).

The one-stop public API::

    from repro import Linguist, load_source
    from repro.grammars.scanners import binary_scanner_spec

    translator = Linguist(load_source("binary")).make_translator(
        binary_scanner_spec()
    )
    translator.translate("101.01")["VAL"]   # 5.25

Subpackages (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the overlay-structured pipeline and translators
* :mod:`repro.frontend` — the ``.ag`` input language
* :mod:`repro.ag` — the attribute-grammar model and analyses
* :mod:`repro.passes` — alternating-pass evaluability
* :mod:`repro.apt` — the file-resident attributed parse tree
* :mod:`repro.evalgen` — optimizations, code generators, evaluators
* :mod:`repro.regex` / :mod:`repro.lalr` — the scanner/parser substrates
* :mod:`repro.grammars` — shipped grammars (incl. the self-description)
"""

from repro.ag import GrammarBuilder
from repro.core import Linguist, Translator
from repro.core.selfgen import SelfGeneration
from repro.errors import ReproError, ResumeError, SpoolCorruptionError
from repro.evalgen.runtime import EvaluationResult, FunctionLibrary
from repro.frontend import load_grammar
from repro.grammars import GRAMMAR_NAMES, library_for, load_source
from repro.passes import Direction
from repro.regex.generator import ScannerSpec

__version__ = "1.0.0"

__all__ = [
    "Linguist",
    "Translator",
    "SelfGeneration",
    "GrammarBuilder",
    "load_grammar",
    "load_source",
    "library_for",
    "GRAMMAR_NAMES",
    "FunctionLibrary",
    "EvaluationResult",
    "ScannerSpec",
    "Direction",
    "ReproError",
    "ResumeError",
    "SpoolCorruptionError",
    "__version__",
]
