"""Deep-recursion guard.

The evaluators recurse once per APT level (the paper's production-
procedures do exactly the same on the 8086 stack), and the oracle's
demand chains can be several frames per level.  CPython's default
1000-frame limit is far too small for even medium inputs, so evaluation
entry points raise it temporarily.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

#: Frame budget for evaluation: supports APTs a few thousand levels deep.
DEEP_LIMIT = 50_000


@contextmanager
def deep_recursion(limit: int = DEEP_LIMIT):
    old = sys.getrecursionlimit()
    if limit > old:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)
