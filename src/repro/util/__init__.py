"""Support substrates: list processing, name table, I/O accounting.

These are the packages §V of the paper lists alongside LINGUIST-86
proper: "a package that implements a name-table for identifiers, and a
package that supports list-processing".  Semantic functions in shipped
attribute grammars resolve their uninterpreted function symbols against
:mod:`repro.util.lists`.
"""

from repro.util.lists import (
    NIL,
    ConsList,
    PartialFunction,
    Sequence,
    SetList,
    STANDARD_FUNCTIONS,
)
from repro.util.nametable import NameTable
from repro.util.iotrack import IOAccountant, MemoryGauge

__all__ = [
    "NIL",
    "ConsList",
    "PartialFunction",
    "Sequence",
    "SetList",
    "STANDARD_FUNCTIONS",
    "NameTable",
    "IOAccountant",
    "MemoryGauge",
]
