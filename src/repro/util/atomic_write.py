"""The one tmp + fsync + atomic-rename idiom, shared by every writer.

Five durable formats (sealed spools, build-cache entries, PROV1
provenance logs, SRVJ1 request journals, checkpoint manifests) all
follow the same discipline: stream bytes into a ``*.tmp`` sibling,
flush, ``fsync``, then ``os.replace`` onto the final name.  A reader
therefore only ever observes a file that is either *absent* or
*completely sealed* — a crash or injected fault mid-write leaves at
worst a classifiable ``*.tmp`` (swept by ``repro doctor``), never a
torn sealed artifact.

This module is that idiom, written once:

* :func:`atomic_write` — context manager yielding a binary (or text)
  file object on a tmp path; on clean exit it fsyncs and renames into
  place, on *any* failure it closes and unlinks the tmp file so no
  debris leaks.
* :func:`atomic_replace` / :func:`fsync_file` / :func:`open_file` —
  the low-level hook points.  All durable writers in the tree call
  these module-level functions instead of ``open``/``os.fsync``/
  ``os.replace`` directly, which gives the fault-injection harness
  (:class:`repro.testing.faults.FilesystemFaultPlan`) a single choke
  point: patching three names here wraps *every* writer in the system
  with seeded ENOSPC / EIO / EMFILE / failed-fsync / failed-rename
  chaos, with no per-writer shims.

The hooks are deliberately plain module globals (not an abstract
interface): production code pays one extra function call, tests swap
them inside a context manager, and there is exactly one place to look
when asking "what does a durable write actually do?".
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator, Optional

__all__ = [
    "atomic_write",
    "atomic_replace",
    "fsync_file",
    "open_file",
    "TMP_SUFFIX",
]

#: Suffix of in-progress staging files.  ``repro doctor`` classifies
#: any ``*.tmp`` it can sniff as *unsealed-tmp* debris.
TMP_SUFFIX = ".tmp"


# -- hook points ------------------------------------------------------------
#
# ``repro.testing.faults.FilesystemFaultPlan.install()`` temporarily
# rebinds these three names to inject faults into every durable writer
# at once.  Nothing else in the tree may rebind them.

def open_file(path: str, mode: str = "wb", **kwargs) -> IO:
    """``open`` as used by durable writers (fault-injection hook)."""
    return open(path, mode, **kwargs)


def fsync_file(fileobj: IO) -> None:
    """Flush + ``os.fsync`` a writer (fault-injection hook)."""
    fileobj.flush()
    os.fsync(fileobj.fileno())


def atomic_replace(tmp_path: str, final_path: str) -> None:
    """``os.replace`` as used by durable writers (fault-injection hook)."""
    os.replace(tmp_path, final_path)


# -- the idiom --------------------------------------------------------------

def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


@contextmanager
def atomic_write(
    path: str,
    *,
    text: bool = False,
    unique: bool = False,
    fsync: bool = True,
    encoding: Optional[str] = None,
) -> Iterator[IO]:
    """Write ``path`` atomically via a fsynced tmp sibling.

    Yields an open file positioned at 0 on ``<path>.tmp`` (or a
    writer-unique ``<path>.<rand>.tmp`` when ``unique=True`` — required
    when concurrent same-key writers may race, e.g. the build cache).
    On clean exit the file is flushed, fsynced (unless ``fsync=False``)
    and atomically renamed onto ``path``.  On any exception — including
    an injected fault from :func:`open_file`/:func:`fsync_file`/
    :func:`atomic_replace` — the tmp file is closed and unlinked before
    the exception propagates, so error paths never leak ``*.tmp``.
    """
    mode = "w" if text else "wb"
    if unique:
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(
            dir=directory,
            prefix=os.path.basename(path) + ".",
            suffix=TMP_SUFFIX,
        )
        os.close(fd)
    else:
        tmp = path + TMP_SUFFIX
    f: Optional[IO] = None
    try:
        f = open_file(tmp, mode, encoding=encoding) if text else open_file(tmp, mode)
        yield f
        if fsync:
            fsync_file(f)
        else:
            f.flush()
        f.close()
        f = None
        atomic_replace(tmp, path)
    except BaseException:
        if f is not None:
            try:
                f.close()
            except OSError:
                pass
        _unlink_quietly(tmp)
        raise
