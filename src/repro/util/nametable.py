"""The name-table package: interned identifier storage.

LINGUIST-86's overlay 1 "builds the table of all identifiers
encountered"; intrinsic attributes of terminal leaves then carry
*name-table indexes* rather than strings, so APT records stay small and
identifier equality is integer equality.  This table is that package.
"""

from __future__ import annotations

from typing import Dict, Iterator, List


class NameTable:
    """Bidirectional string <-> index intern table.

    Indexes are dense and start at 1; index 0 is reserved for the
    "no name" sentinel (the paper's ``null$name``).
    """

    NO_NAME = 0

    def __init__(self) -> None:
        self._names: List[str] = ["<no-name>"]
        self._index: Dict[str, int] = {}

    def intern(self, text: str) -> int:
        """Return the index for ``text``, adding it if new."""
        idx = self._index.get(text)
        if idx is None:
            idx = len(self._names)
            self._names.append(text)
            self._index[text] = idx
        return idx

    def copy(self) -> "NameTable":
        """An independent clone with identical index assignments.

        Seeding a new spool's codec with a copy of a sealed spool's
        table keeps every id of the source valid in the target, which
        is what lets the incremental memo splice *encoded* records
        verbatim between generations (:mod:`repro.passes.incremental`).
        """
        clone = NameTable.__new__(NameTable)
        clone._names = list(self._names)
        clone._index = dict(self._index)
        return clone

    def lookup(self, text: str) -> int:
        """Return the index for ``text`` or :data:`NO_NAME` if absent."""
        return self._index.get(text, self.NO_NAME)

    def spelling(self, index: int) -> str:
        """Return the source text for a name-table index."""
        if not 0 <= index < len(self._names):
            raise KeyError(f"no name-table entry {index}")
        return self._names[index]

    def __contains__(self, text: str) -> bool:
        return text in self._index

    def __len__(self) -> int:
        """Number of interned names (excluding the sentinel)."""
        return len(self._names) - 1

    def __iter__(self) -> Iterator[str]:
        return iter(self._names[1:])

    def byte_size(self) -> int:
        """Approximate storage footprint, for the §Intro memory inventory."""
        return sum(len(n.encode("utf-8")) + 8 for n in self._names[1:])
