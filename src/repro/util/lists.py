"""The list-processing package: immutable cons lists, sets, sequences,
partial functions.

The paper's §Intro inventories LINGUIST-86's 48K of dynamic memory and
includes "the linked lists that represent sets, sequences, and partial
functions".  Semantic functions are *pure*, so every structure here is
immutable and structurally shared — `cons` is O(1) and never mutates.

The :data:`STANDARD_FUNCTIONS` table at the bottom exports the
uninterpreted function symbols used by the shipped attribute grammars
(``union$setof``, ``consPF``, ``IsIn`` …).  LINGUIST-86 itself leaves
such identifiers to the target-language compiler; our generated Python
evaluators resolve them against a function library, and this module is
the library the self-description grammar uses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple


class ConsList:
    """An immutable singly linked list.

    ``ConsList(head, tail)`` is a cell; :data:`NIL` is the empty list.
    Structural equality and hashing are by contents, so cons lists can
    themselves be attribute values, set members, and dict keys.
    """

    __slots__ = ("head", "tail", "_length", "_hash")

    def __init__(self, head: Any = None, tail: Optional["ConsList"] = None):
        if tail is None and head is None:
            # The NIL cell: length 0, no head.
            self.head = None
            self.tail = self
            self._length = 0
        else:
            if tail is None:
                tail = NIL
            if not isinstance(tail, ConsList):
                raise TypeError(f"tail must be a ConsList, got {type(tail).__name__}")
            self.head = head
            self.tail = tail
            self._length = tail._length + 1
        self._hash: Optional[int] = None

    @property
    def is_nil(self) -> bool:
        return self._length == 0

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Any]:
        cell = self
        while cell._length:
            yield cell.head
            cell = cell.tail

    def __contains__(self, item: Any) -> bool:
        return any(x == item for x in self)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ConsList):
            return NotImplemented
        if self._length != other._length:
            return False
        return all(a == b for a, b in zip(self, other))

    def __hash__(self) -> int:
        if self._hash is None:
            # One hash domain for every sequence representation (plain
            # cons lists, Sequence, CatSeq ropes) so equal sequences
            # hash equally; SetList overrides with set semantics.
            self._hash = hash(("seq",) + tuple(self))
        return self._hash

    def __repr__(self) -> str:
        return f"{type(self).__name__}[{', '.join(repr(x) for x in self)}]"

    def cons(self, item: Any) -> "ConsList":
        """Return a new list with ``item`` prepended."""
        return type(self)(item, self)

    def reverse(self) -> "ConsList":
        return self._build(list(self)[::-1], self._empty())

    def append(self, other) -> "SeqLike":
        """Return ``self ++ other``.

        Small left sides rebuild the spine eagerly; large ones return a
        :class:`CatSeq` rope so repeated accumulation (code lists built
        statement by statement) stays linear instead of quadratic.
        """
        if self._length > _ROPE_THRESHOLD:
            return CatSeq(self, other)
        if isinstance(other, CatSeq):
            return CatSeq(self, other) if self._length else other
        return self._build(list(self), other)

    def to_pylist(self) -> list:
        return list(self)

    @classmethod
    def from_iterable(cls, items) -> "ConsList":
        return cls._build(list(items), cls._empty_for(cls))

    @classmethod
    def _build(cls, items: list, tail: "ConsList") -> "ConsList":
        """Cons ``items`` onto ``tail`` without per-cell validation — the
        spine-rebuild fast path the evaluators hammer."""
        length = tail._length
        for item in reversed(items):
            cell = cls.__new__(cls)
            cell.head = item
            cell.tail = tail
            length += 1
            cell._length = length
            cell._hash = None
            tail = cell
        return tail

    def _empty(self) -> "ConsList":
        return self._empty_for(type(self))

    def __reduce__(self):
        # Serialize as a flat Python list: pickling a deep cons spine
        # recursively would overflow the interpreter stack, and APT
        # attribute values routinely hold thousand-element lists.
        return (type(self).from_iterable, (self.to_pylist(),))

    @staticmethod
    def _empty_for(cls: type) -> "ConsList":
        if cls is ConsList:
            return NIL
        return cls.__new_empty__()


#: The empty list, shared by every plain ConsList.
NIL = ConsList()

#: Left sides longer than this turn ``append`` into an O(1) rope node.
_ROPE_THRESHOLD = 32


class CatSeq:
    """A concatenation rope over sequences.

    ``CatSeq(left, right)`` represents ``left ++ right`` without copying
    either side — the structure the original's list package would have
    needed to keep code-list accumulation linear.  Iteration is
    non-recursive (an explicit stack), so arbitrarily deep ropes neither
    overflow nor degrade.  Equality and hashing are by element sequence,
    interchangeable with :class:`ConsList`; pickling flattens to a plain
    :class:`Sequence`.
    """

    __slots__ = ("left", "right", "_length", "_hash")

    def __init__(self, left, right):
        self.left = left
        self.right = right
        self._length = len(left) + len(right)
        self._hash = None

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Any]:
        stack = [self.right, self.left]
        while stack:
            node = stack.pop()
            if isinstance(node, CatSeq):
                stack.append(node.right)
                stack.append(node.left)
            else:
                yield from node

    def __contains__(self, item: Any) -> bool:
        return any(x == item for x in self)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, (CatSeq, ConsList)):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self, other))

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("seq",) + tuple(self))
        return self._hash

    def __repr__(self) -> str:
        return f"CatSeq[{', '.join(repr(x) for x in self)}]"

    @property
    def is_nil(self) -> bool:
        return self._length == 0

    @property
    def head(self) -> Any:
        for item in self:
            return item
        raise IndexError("head of an empty sequence")

    @property
    def tail(self) -> "SeqLike":
        if not self._length:
            raise IndexError("tail of an empty sequence")
        # Preserve structural sharing: dropping the head of ``left``
        # must keep ``right`` as a shared spine (the right-sharing
        # invariant append guarantees), never flatten-and-rebuild.
        if len(self.left):
            left_tail = self.left.tail
            return left_tail.append(self.right) if len(left_tail) else self.right
        return self.right.tail

    def cons(self, item: Any) -> "CatSeq":
        return CatSeq(Sequence.from_iterable([item]), self)

    def append(self, other) -> "CatSeq":
        return CatSeq(self, other)

    def reverse(self) -> "ConsList":
        return Sequence.from_iterable(self.to_pylist()[::-1])

    def to_pylist(self) -> list:
        return list(self)

    def __reduce__(self):
        return (Sequence.from_iterable, (self.to_pylist(),))


#: Anything usable where the paper's list package expects a sequence.
SeqLike = object  # documentation alias: ConsList | CatSeq


class Sequence(ConsList):
    """A cons list used as an ordered sequence (order is significant)."""

    __slots__ = ()

    _EMPTY: Optional["Sequence"] = None

    @classmethod
    def __new_empty__(cls) -> "Sequence":
        if cls._EMPTY is None:
            empty = cls.__new__(cls)
            ConsList.__init__(empty)
            cls._EMPTY = empty
        return cls._EMPTY

    @classmethod
    def empty(cls) -> "Sequence":
        return cls.__new_empty__()


class SetList(ConsList):
    """A cons list maintained with set semantics: insertion is idempotent.

    Equality is order-insensitive, matching the mathematical set the list
    represents — the paper's evaluator passes symbol/function *sets*
    around the APT (e.g. ``FUNCTS``, ``USED$AOS``).
    """

    __slots__ = ()

    _EMPTY: Optional["SetList"] = None

    @classmethod
    def __new_empty__(cls) -> "SetList":
        if cls._EMPTY is None:
            empty = cls.__new__(cls)
            ConsList.__init__(empty)
            cls._EMPTY = empty
        return cls._EMPTY

    @classmethod
    def empty(cls) -> "SetList":
        return cls.__new_empty__()

    def add(self, item: Any) -> "SetList":
        """Return the set with ``item`` included (no-op if present)."""
        if item in self:
            return self
        return SetList(item, self)

    def union(self, other: "SetList") -> "SetList":
        out = self
        for item in other:
            out = out.add(item)
        return out

    def intersection(self, other: "SetList") -> "SetList":
        out = SetList.empty()
        for item in self:
            if item in other:
                out = out.add(item)
        return out

    def difference(self, other: "SetList") -> "SetList":
        out = SetList.empty()
        for item in self:
            if item not in other:
                out = out.add(item)
        return out

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, SetList):
            return NotImplemented
        if len(self) != len(other):
            mine = {self._key(x) for x in self}
            theirs = {self._key(x) for x in other}
            return mine == theirs
        mine = {self._key(x) for x in self}
        theirs = {self._key(x) for x in other}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(frozenset(self._key(x) for x in self))

    @staticmethod
    def _key(item: Any) -> Any:
        try:
            hash(item)
            return item
        except TypeError:
            return repr(item)


class PartialFunction:
    """An immutable finite map represented as an association list.

    ``consPF(key, value, pf)`` shadows any earlier binding of ``key``;
    ``EvalPF(pf, key)`` returns :data:`BOTTOM` when unbound, mirroring
    the ``EvalPF(...) <> bottom`` test in the paper's Figure 5.
    """

    __slots__ = ("_cell",)

    def __init__(self, cell: ConsList = NIL):
        self._cell = cell

    @classmethod
    def empty(cls) -> "PartialFunction":
        return cls(NIL)

    def bind(self, key: Any, value: Any) -> "PartialFunction":
        return PartialFunction(self._cell.cons((key, value)))

    def lookup(self, key: Any) -> Any:
        for k, v in self._cell:
            if k == key:
                return v
        return BOTTOM

    def is_bound(self, key: Any) -> bool:
        return self.lookup(key) is not BOTTOM

    def domain(self) -> SetList:
        seen = SetList.empty()
        for k, _ in self._cell:
            seen = seen.add(k)
        return seen

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate visible (unshadowed) bindings, newest first."""
        seen = set()
        for k, v in self._cell:
            key = SetList._key(k)
            if key in seen:
                continue
            seen.add(key)
            yield (k, v)

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, PartialFunction):
            return NotImplemented
        return dict(
            (SetList._key(k), v) for k, v in self.items()
        ) == dict((SetList._key(k), v) for k, v in other.items())

    def __hash__(self) -> int:
        return hash(frozenset((SetList._key(k), SetList._key(v)) for k, v in self.items()))

    def __repr__(self) -> str:
        binds = ", ".join(f"{k!r}->{v!r}" for k, v in self.items())
        return f"PartialFunction{{{binds}}}"

    def __reduce__(self):
        return (_rebuild_pf, (self._cell.to_pylist(),))


def _rebuild_pf(pairs):
    """Pickle helper: rebuild a PartialFunction from its binding list."""
    return PartialFunction(NIL.__class__.from_iterable(pairs))


class _Bottom:
    """The undefined value of a partial function (singleton)."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "bottom"

    def __bool__(self) -> bool:
        return False


BOTTOM = _Bottom()


# ---------------------------------------------------------------------------
# The standard function library for shipped attribute grammars.
# ---------------------------------------------------------------------------

def _union_setof(item: Any, s: SetList) -> SetList:
    """``UnionSetof(x, S)`` = ``S ∪ {x}`` (paper's ``union$setof``)."""
    if not isinstance(s, SetList):
        s = SetList.from_iterable(s or ())
    return s.add(item)


def _union(a: SetList, b: SetList) -> SetList:
    if not isinstance(a, SetList):
        a = SetList.from_iterable(a or ())
    if not isinstance(b, SetList):
        b = SetList.from_iterable(b or ())
    return a.union(b)


def _is_in(item: Any, s: Any) -> bool:
    if s is None:
        return False
    return item in s


def _cons(item: Any, seq: Any) -> Any:
    if not isinstance(seq, (ConsList, CatSeq)):
        seq = Sequence.from_iterable(seq or ())
    return seq.cons(item)


def _cons2(a: Any, b: Any, seq: Sequence) -> Sequence:
    return _cons((a, b), seq)


def _cons3(a: Any, b: Any, c: Any, seq: Sequence) -> Sequence:
    return _cons((a, b, c), seq)


def _join_pf(a: PartialFunction, b: PartialFunction) -> PartialFunction:
    """``JoinPF(a, b)``: all bindings of ``a`` overridden by ``b``'s."""
    out = a if isinstance(a, PartialFunction) else PartialFunction.empty()
    if isinstance(b, PartialFunction):
        for k, v in b.items():
            out = out.bind(k, v)
    return out


def _cons_pf(key: Any, value: Any, pf: PartialFunction) -> PartialFunction:
    if pf is None:
        pf = PartialFunction.empty()
    return pf.bind(key, value)


def _eval_pf(pf: PartialFunction, key: Any) -> Any:
    if pf is None:
        return BOTTOM
    return pf.lookup(key)


def _incr_if_zero(flag: Any, value: Any) -> Any:
    """Knuth-style helper used by the paper's Figure 1 example."""
    return value + 1 if not flag else value


def _incr_if_true(flag: Any, value: Any) -> Any:
    return value + 1 if flag else value


def _merge_msgs(a: Any, b: Any) -> Any:
    if not isinstance(a, (ConsList, CatSeq)):
        a = Sequence.from_iterable(a or ())
    if not isinstance(b, (ConsList, CatSeq)):
        b = Sequence.from_iterable(b or ())
    if not a:
        return b
    if not b:
        return a
    return a.append(b)


def _cons_msg(line: Any, msg: Any, name: Any, rest: Any) -> Any:
    """``cons$msg(line, err, name, msgs)``: prepend unless ``err`` is no-msg."""
    if not isinstance(rest, (ConsList, CatSeq)):
        rest = Sequence.from_iterable(rest or ())
    if msg in (None, "", "no$msg"):
        return rest
    if name == "null$name":
        name = None
    return rest.cons((line, msg, name))


STANDARD_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    # Set operations
    "union$setof": _union_setof,
    "UnionSetof": _union_setof,
    "union": _union,
    "Union": _union,
    "intersect": lambda a, b: a.intersection(b),
    "difference": lambda a, b: a.difference(b),
    "IsIn": _is_in,
    "Isln": _is_in,  # the OCR'd paper spells it both ways
    "empty$set": lambda: SetList.empty(),
    "SizeOf": lambda s: len(s) if s is not None else 0,
    # Sequence operations
    "cons": _cons,
    "cons2": _cons2,
    "cons3": _cons3,
    "append": _merge_msgs,
    "empty$list": lambda: Sequence.empty(),
    "null$list": lambda: Sequence.empty(),
    "Head": lambda s: s.head,
    "Tail": lambda s: s.tail,
    "Length": lambda s: len(s) if s is not None else 0,
    # Partial functions
    "consPF": _cons_pf,
    "EvalPF": _eval_pf,
    "JoinPF": lambda a, b: _join_pf(a, b),
    "empty$pf": lambda: PartialFunction.empty(),
    "DomainOf": lambda pf: pf.domain(),
    # Message plumbing (the linguist.ag error channel)
    "cons$msg": _cons_msg,
    "merge$msgs": _merge_msgs,
    "null$msg$list": lambda: Sequence.empty(),
    # Arithmetic / misc helpers from the paper's running examples
    "IncrIfZero": _incr_if_zero,
    "IncrIfTrue": _incr_if_true,
    "IncrIf": _incr_if_true,
    "Add": lambda a, b: a + b,
    "Sub": lambda a, b: a - b,
    "Mul": lambda a, b: a * b,
    "Div": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "Max": lambda a, b: a if a >= b else b,
    "Min": lambda a, b: a if a <= b else b,
    "Neg": lambda a: -a,
    "Pow2": lambda s: 2.0 ** s,
    "Not": lambda a: not a,
    "Pair": lambda a, b: (a, b),
    "First": lambda p: p[0],
    "Second": lambda p: p[1],
    "Identity": lambda a: a,
}
