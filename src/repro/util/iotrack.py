"""I/O and memory accounting — compatibility shims over ``repro.obs``.

Two of the paper's headline claims are quantitative-but-relative:

* evaluation is **I/O bound** — most evaluator time is spent reading and
  writing the APT intermediate files (§V's overlay-time table);
* the APT (>42K bytes for the self grammar) evaluates inside a 48K-byte
  dynamic-memory budget because only a root-to-node *stack* of nodes is
  resident (§Intro).

We cannot rerun the 8086, so every spool file and every evaluator in
this reproduction charges its traffic to an :class:`IOAccountant` and
its node residency to a :class:`MemoryGauge`.  The implementations now
live in :mod:`repro.obs.metrics`, where they register as snapshot
sources of the unified :class:`~repro.obs.metrics.MetricsRegistry`;
this module keeps the historical import path alive.
"""

from __future__ import annotations

from repro.obs.metrics import ChannelStats, IOAccountant, IOStats, MemoryGauge

__all__ = ["ChannelStats", "IOAccountant", "IOStats", "MemoryGauge"]
