"""I/O and memory accounting.

Two of the paper's headline claims are quantitative-but-relative:

* evaluation is **I/O bound** — most evaluator time is spent reading and
  writing the APT intermediate files (§V's overlay-time table);
* the APT (>42K bytes for the self grammar) evaluates inside a 48K-byte
  dynamic-memory budget because only a root-to-node *stack* of nodes is
  resident (§Intro).

We cannot rerun the 8086, so every spool file and every evaluator in
this reproduction charges its traffic to an :class:`IOAccountant` and
its node residency to a :class:`MemoryGauge`; the benchmarks read these
counters to reproduce the claims' shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IOAccountant:
    """Counts record and byte traffic between memory and "disk"."""

    records_read: int = 0
    records_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Per-channel breakdown, e.g. {"pass1.in": ..., "pass1.out": ...}
    by_channel: Dict[str, "ChannelStats"] = field(default_factory=dict)

    def charge_read(self, nbytes: int, channel: str = "") -> None:
        self.records_read += 1
        self.bytes_read += nbytes
        if channel:
            self._channel(channel).charge_read(nbytes)

    def charge_write(self, nbytes: int, channel: str = "") -> None:
        self.records_written += 1
        self.bytes_written += nbytes
        if channel:
            self._channel(channel).charge_write(nbytes)

    def _channel(self, name: str) -> "ChannelStats":
        stats = self.by_channel.get(name)
        if stats is None:
            stats = ChannelStats()
            self.by_channel[name] = stats
        return stats

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def total_records(self) -> int:
        return self.records_read + self.records_written

    def snapshot(self) -> Dict[str, int]:
        return {
            "records_read": self.records_read,
            "records_written": self.records_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass
class ChannelStats:
    records_read: int = 0
    records_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def charge_read(self, nbytes: int) -> None:
        self.records_read += 1
        self.bytes_read += nbytes

    def charge_write(self, nbytes: int) -> None:
        self.records_written += 1
        self.bytes_written += nbytes


class MemoryGauge:
    """Tracks currently resident and peak resident bytes of APT nodes.

    Evaluators call :meth:`acquire` when a node enters the in-memory
    stack (``GetNode``) and :meth:`release` when it is written back
    (``PutNode``).  ``peak_bytes`` is the 48K-claim comparator.
    """

    def __init__(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self.current_nodes = 0
        self.peak_nodes = 0

    def acquire(self, nbytes: int) -> None:
        self.current_bytes += nbytes
        self.current_nodes += 1
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        if self.current_nodes > self.peak_nodes:
            self.peak_nodes = self.current_nodes

    def release(self, nbytes: int) -> None:
        self.current_bytes -= nbytes
        self.current_nodes -= 1

    def reset(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self.current_nodes = 0
        self.peak_nodes = 0
