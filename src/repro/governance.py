"""Resource governance: disk budgets, cache caps, free-space watermarks.

LINGUIST-86's economics (§V) amortize an expensive build into durable
artifacts — sealed spools, cache entries, provenance logs, journals —
which makes *disk* the resource a long-lived host actually exhausts.
This module is the admission-control layer over that storage:

* :class:`DiskBudget` — a per-run byte budget charged by every spool
  spill and checkpoint pass; the charge that would overspend raises a
  typed :class:`~repro.errors.DiskBudgetExceeded` *before* the bytes
  land, so a runaway evaluation degrades into a clean typed failure
  instead of filling the disk.  Surfaced on the CLI as
  ``repro run --disk-budget``.
* :func:`evict_cache` — the build-cache size cap: least-recently-used
  entries (mtime is touched on every load hit) are unlinked until the
  cache fits; ``repro cache gc`` is the CLI face.
* :class:`DiskWatermark` — hysteresis over ``shutil.disk_usage``: the
  serve daemon flips a grammar to *degraded* (503 + Retry-After,
  journal suspended with an explicit gap marker) when free space
  crosses the **low** watermark and auto-recovers once it climbs back
  above the **high** watermark, so the daemon never flaps at the
  boundary.  ``REPRO_FAKE_DISK_FREE`` overrides the probe for tests
  and the chaos-disk CI job.

All three surface ``governance.*`` metrics through the shared
:class:`~repro.obs.MetricsRegistry` (visible in ``/stats`` and
``repro profile``); see docs/robustness.md "Resource governance and
recovery".
"""

from __future__ import annotations

import os
import shutil
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DiskBudgetExceeded

__all__ = [
    "DiskBudget",
    "DiskWatermark",
    "FAKE_DISK_FREE_ENV",
    "evict_cache",
]

#: Test/CI hook: when set, :meth:`DiskWatermark.free_bytes` reports this
#: many free bytes instead of probing the real filesystem.  A value of
#: ``@/path/to/file`` reads the byte count from that file on every
#: probe, letting an external driver change it while a daemon runs.
FAKE_DISK_FREE_ENV = "REPRO_FAKE_DISK_FREE"


class DiskBudget:
    """A thread-safe byte budget for one run's durable artifacts.

    ``charge(n)`` admits ``n`` more bytes or raises
    :class:`DiskBudgetExceeded`; ``release(n)`` returns bytes when an
    artifact is deleted (e.g. a temp spool closed).  ``limit_bytes <= 0``
    means unlimited (every charge succeeds) so callers can pass the
    budget through unconditionally.
    """

    def __init__(self, limit_bytes: int, metrics=None, label: str = ""):
        self.limit_bytes = int(limit_bytes)
        self.label = label
        self._metrics = metrics
        self._charged = 0
        self._peak = 0
        self._lock = threading.Lock()

    @property
    def charged(self) -> int:
        return self._charged

    @property
    def peak(self) -> int:
        return self._peak

    def charge(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        with self._lock:
            if (
                self.limit_bytes > 0
                and self._charged + nbytes > self.limit_bytes
            ):
                if self._metrics is not None:
                    self._metrics.counter(
                        "governance.disk_budget_rejections"
                    ).inc()
                raise DiskBudgetExceeded(
                    self.limit_bytes, self._charged, nbytes, self.label
                )
            self._charged += nbytes
            self._peak = max(self._peak, self._charged)
        if self._metrics is not None:
            self._metrics.gauge("governance.disk_budget_charged_bytes").set(
                self._charged
            )

    def release(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        with self._lock:
            self._charged = max(0, self._charged - nbytes)
        if self._metrics is not None:
            self._metrics.gauge("governance.disk_budget_charged_bytes").set(
                self._charged
            )


def evict_cache(
    cache, max_bytes: int, metrics=None
) -> Tuple[int, List]:
    """Shrink a :class:`~repro.buildcache.BuildCache` to ``max_bytes``.

    Entries are dropped least-recently-used first (store and load-hit
    both touch mtime) until the sealed entries fit the cap.  Returns
    ``(kept_bytes, evicted_entries)``.  A concurrent process unlinking
    the same entry is tolerated — eviction is idempotent.
    """
    entries = sorted(cache.entries(), key=lambda e: (e.mtime, e.path))
    total = sum(e.file_bytes for e in entries)
    evicted = []
    for entry in entries:
        if total <= max_bytes:
            break
        try:
            os.unlink(entry.path)
        except OSError:
            pass
        total -= entry.file_bytes
        evicted.append(entry)
        if metrics is not None:
            metrics.counter("governance.cache_evictions").inc()
            metrics.counter("governance.cache_evicted_bytes").inc(
                entry.file_bytes
            )
    if metrics is not None:
        metrics.gauge("governance.cache_bytes").set(max(0, total))
    return max(0, total), evicted


@dataclass
class DiskWatermark:
    """Free-space hysteresis for one directory.

    ``check()`` probes free bytes and maintains :attr:`degraded`:
    crossing *below* ``low_bytes`` trips degraded mode, and only
    climbing back *above* ``high_bytes`` recovers it — the gap between
    the two watermarks is the hysteresis band that stops the daemon
    from flapping while a nearly-full disk wobbles around one
    threshold.
    """

    path: str
    low_bytes: int
    high_bytes: int
    metrics: object = None
    degraded: bool = False
    #: Transition counts (for tests and ``/stats``).
    trips: int = field(default=0)
    recoveries: int = field(default=0)

    def __post_init__(self):
        if self.high_bytes < self.low_bytes:
            raise ValueError(
                f"high watermark {self.high_bytes} below low watermark "
                f"{self.low_bytes}"
            )

    def free_bytes(self) -> int:
        fake = os.environ.get(FAKE_DISK_FREE_ENV)
        if fake is not None:
            if fake.startswith("@"):
                # Indirection for out-of-process drivers (the chaos-disk
                # CI job): the named file's current contents are the
                # fake free byte count, re-read on every probe so the
                # driver can fill and free the "disk" while the daemon
                # runs in a subprocess.
                try:
                    with open(fake[1:], "r", encoding="ascii") as f:
                        return int(f.read().strip())
                except (OSError, ValueError):
                    return shutil.disk_usage(self.path).free
            return int(fake)
        return shutil.disk_usage(self.path).free

    def check(self) -> bool:
        """Probe and update; returns the (possibly new) degraded state."""
        free = self.free_bytes()
        if self.metrics is not None:
            self.metrics.gauge("governance.disk_free_bytes").set(free)
        if not self.degraded and free < self.low_bytes:
            self.degraded = True
            self.trips += 1
            if self.metrics is not None:
                self.metrics.counter("governance.watermark_trips").inc()
                self.metrics.gauge("governance.degraded").set(1)
        elif self.degraded and free > self.high_bytes:
            self.degraded = False
            self.recoveries += 1
            if self.metrics is not None:
                self.metrics.counter("governance.watermark_recoveries").inc()
                self.metrics.gauge("governance.degraded").set(0)
        return self.degraded
