"""The in-memory demand-driven oracle evaluator.

Attribute grammars are declarative: the attribute-instance values are
fixed by the grammar and the tree, independent of evaluation order (§I).
This evaluator computes them the most direct way — whole tree in
memory, each instance computed on demand and memoized — and serves as
the correctness baseline the alternating-pass evaluators are diffed
against, and as the memory-consumption comparator of EXP-M1/ABL-4.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ag.copyrules import Binding, production_bindings
from repro.ag.model import (
    AttrKind,
    AttributeGrammar,
    LHS_POSITION,
    LIMB_POSITION,
    SymbolKind,
)
from repro.apt.linear import TreeNode
from repro.apt.node import estimate_bytes
from repro.errors import EvaluationError
from repro.evalgen.exprinterp import eval_expr
from repro.evalgen.runtime import EvaluationResult, FunctionLibrary


class _Instance:
    """A tree node wrapped with parent context."""

    __slots__ = ("tree", "parent", "position")

    def __init__(self, tree: TreeNode, parent: Optional["_Instance"], position: int):
        self.tree = tree
        self.parent = parent
        self.position = position  # position in the parent's production


_IN_PROGRESS = object()


class OracleEvaluator:
    """Demand-driven evaluation over an in-memory APT."""

    def __init__(self, ag: AttributeGrammar, library: Optional[FunctionLibrary] = None):
        self.ag = ag
        self.library = library or FunctionLibrary()
        # (production index, position, attr name) -> Binding
        self._bindings: Dict[Tuple[int, int, str], Binding] = {}
        for prod in ag.productions:
            for b in production_bindings(prod):
                key = (prod.index, b.target.position, b.target.attr_name)
                self._bindings[key] = b
        self._memo: Dict[Tuple[int, str], Any] = {}
        self.total_tree_bytes = 0

    # ------------------------------------------------------------------

    def evaluate(self, root: TreeNode, attribute_all: bool = True) -> EvaluationResult:
        """Evaluate the tree; return the root's attributes.

        With ``attribute_all`` every attribute instance of every node is
        computed and stored into the node's ``attrs`` (so the fully
        attributed tree can be diffed against the file paradigm's
        output); otherwise only what the root demands is computed.
        """
        from repro.util.recursion import deep_recursion

        with deep_recursion():
            return self._evaluate(root, attribute_all)

    def _evaluate(self, root: TreeNode, attribute_all: bool) -> EvaluationResult:
        self._memo.clear()
        if root.node.symbol != self.ag.start:
            raise EvaluationError(
                f"oracle: tree root {root.node.symbol!r} is not the start "
                f"symbol {self.ag.start!r}"
            )
        root_inst = _Instance(root, None, 0)
        instances = self._collect(root_inst)
        root_sym = self.ag.symbol(self.ag.start)
        for attr in root_sym.synthesized:
            root.node.attrs[attr.name] = self._value(root_inst, attr.name)
        if attribute_all:
            for inst in instances:
                sym = self.ag.symbol(inst.tree.node.symbol)
                if sym.kind is SymbolKind.TERMINAL:
                    continue
                for attr in sym.attributes.values():
                    inst.tree.node.attrs[attr.name] = self._value(inst, attr.name)
                prod = self._production_of(inst)
                if prod is not None and prod.limb:
                    limb_sym = self.ag.symbol(prod.limb)
                    for attr in limb_sym.attributes.values():
                        value = self._limb_value(inst, attr.name)
                        if inst.tree.limb is not None:
                            inst.tree.limb.attrs[attr.name] = value
        self.total_tree_bytes = sum(
            inst.tree.node.byte_size() for inst in instances
        )
        return EvaluationResult(root.node.attrs, n_passes=0)

    # ------------------------------------------------------------------

    def _collect(self, root: _Instance) -> List[_Instance]:
        out: List[_Instance] = []
        stack = [root]
        while stack:
            inst = stack.pop()
            out.append(inst)
            for i, child in enumerate(inst.tree.children):
                stack.append(_Instance(child, inst, i + 1))
        return out

    def _production_of(self, inst: _Instance):
        idx = inst.tree.node.production
        return self.ag.productions[idx] if idx is not None else None

    def _value(self, inst: _Instance, attr_name: str) -> Any:
        sym = self.ag.symbol(inst.tree.node.symbol)
        attr = sym.attributes.get(attr_name)
        if attr is None:
            raise EvaluationError(f"{sym.name!r} has no attribute {attr_name!r}")
        if attr.kind is AttrKind.INTRINSIC:
            try:
                return inst.tree.node.attrs[attr_name]
            except KeyError:
                raise EvaluationError(
                    f"intrinsic {sym.name}.{attr_name} was not set by the parser"
                ) from None
        key = (id(inst.tree), attr_name)
        if key in self._memo:
            value = self._memo[key]
            if value is _IN_PROGRESS:
                raise EvaluationError(
                    f"circular attribute instance {sym.name}.{attr_name} at run time"
                )
            return value
        self._memo[key] = _IN_PROGRESS
        if attr.kind is AttrKind.SYNTHESIZED:
            ctx = inst
            prod = self._production_of(inst)
            if prod is None:
                raise EvaluationError(
                    f"synthesized {sym.name}.{attr_name} demanded at a leaf"
                )
            binding = self._bindings.get((prod.index, LHS_POSITION, attr_name))
        else:  # inherited
            ctx = inst.parent
            if ctx is None:
                raise EvaluationError(
                    f"inherited {sym.name}.{attr_name} demanded at the root"
                )
            prod = self._production_of(ctx)
            binding = self._bindings.get((prod.index, inst.position, attr_name))
        if binding is None:
            raise EvaluationError(
                f"no semantic function defines {sym.name}.{attr_name} "
                f"in production {prod.index} ({prod})"
            )
        value = self._eval_binding(ctx, binding)
        self._memo[key] = value
        return value

    def _limb_value(self, inst: _Instance, attr_name: str) -> Any:
        prod = self._production_of(inst)
        key = (id(inst.tree), f"$limb.{attr_name}")
        if key in self._memo:
            value = self._memo[key]
            if value is _IN_PROGRESS:
                raise EvaluationError(
                    f"circular limb attribute {prod.limb}.{attr_name} at run time"
                )
            return value
        self._memo[key] = _IN_PROGRESS
        binding = self._bindings.get((prod.index, LIMB_POSITION, attr_name))
        if binding is None:
            raise EvaluationError(
                f"limb attribute {prod.limb}.{attr_name} is never defined"
            )
        value = self._eval_binding(inst, binding)
        self._memo[key] = value
        return value

    def _eval_binding(self, ctx: _Instance, binding: Binding) -> Any:
        def lookup(position: int, attr_name: str) -> Any:
            if position == LHS_POSITION:
                return self._value(ctx, attr_name)
            if position == LIMB_POSITION:
                return self._limb_value(ctx, attr_name)
            child = _Instance(ctx.tree.children[position - 1], ctx, position)
            return self._value(child, attr_name)

        return eval_expr(
            binding.expr, lookup, self.library.call, self.library.constant
        )
