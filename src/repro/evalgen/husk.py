"""Code-size accounting: the §V pass-size/husk table (EXP-T2, EXP-T5).

"The husk of an attribute evaluator module is everything except the
semantic functions; included in the husk are the production-procedure
declarations, calls to GetNode and PutNode, and recursive calls to
production-procedures.  For a given grammar the size of the husk is the
same for every pass."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.evalgen.codegen_py import CodeArtifact


@dataclass
class PassSize:
    pass_k: int
    total_bytes: int
    husk_bytes: int
    sem_bytes: int
    n_subsumed: int


@dataclass
class CodeSizeReport:
    grammar: str
    language: str
    passes: List[PassSize]

    @property
    def husk_bytes(self) -> int:
        """The common husk size (§V lists it once for all passes)."""
        return self.passes[0].husk_bytes if self.passes else 0

    @property
    def total_sem_bytes(self) -> int:
        return sum(p.sem_bytes for p in self.passes)

    @property
    def total_bytes(self) -> int:
        return sum(p.total_bytes for p in self.passes)

    def render(self) -> str:
        lines = [
            f"evaluator code sizes for {self.grammar!r} ({self.language}):"
        ]
        for p in self.passes:
            lines.append(
                f"  pass {p.pass_k} - {p.total_bytes} bytes"
                f"  (semantic {p.sem_bytes}, subsumed copies {p.n_subsumed})"
            )
        lines.append(f"  husk   - {self.husk_bytes} bytes")
        return "\n".join(lines)


def measure_code_sizes(
    grammar_name: str, artifacts: List[CodeArtifact], language: str = "python"
) -> CodeSizeReport:
    passes = [
        PassSize(
            pass_k=a.pass_k,
            total_bytes=a.total_bytes,
            husk_bytes=a.husk_bytes,
            sem_bytes=a.sem_bytes,
            n_subsumed=a.n_subsumed,
        )
        for a in artifacts
    ]
    return CodeSizeReport(grammar=grammar_name, language=language, passes=passes)


def semantic_code_reduction(
    with_subsumption: CodeSizeReport, without_subsumption: CodeSizeReport
) -> float:
    """Percentage of semantic-function code eliminated by subsumption —
    the §III headline ("nearly 20% … about 13%")."""
    before = without_subsumption.total_sem_bytes
    after = with_subsumption.total_sem_bytes
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before
