"""Evaluator generation: plans, optimizations, code generators, runtimes.

The pipeline: a validated grammar plus a pass assignment feed
:mod:`repro.evalgen.deadness` (Saarinen-style significant/temporary
attribute analysis — §III's "not writing dead attribute-instances") and
:mod:`repro.evalgen.subsumption` (the static-subsumption optimization);
:mod:`repro.evalgen.plan` lowers each production-procedure of each pass
into an action list with every attribute reference resolved to a node
field, a local temporary, or a static global (with the save/restore
discipline of the paper's ListProd example); the actions are then either
executed directly by the Schulz-style interpreter
(:mod:`repro.evalgen.interp`) or rendered as source text by
:mod:`repro.evalgen.codegen_py` (executable Python) and
:mod:`repro.evalgen.codegen_pascal` (Pascal, for the §V byte-size
tables).  :mod:`repro.evalgen.oracle` is the in-memory demand-driven
evaluator used as the differential-testing baseline.
"""

from repro.evalgen.runtime import EvaluatorRuntime, EvaluationResult
from repro.evalgen.oracle import OracleEvaluator
from repro.evalgen.deadness import DeadnessAnalysis, analyze_deadness
from repro.evalgen.subsumption import (
    StaticAllocation,
    SubsumptionConfig,
    choose_static_attributes,
)
from repro.evalgen.plan import EvaluationPlan, PassPlan, build_pass_plans
from repro.evalgen.interp import InterpretiveEvaluator
from repro.evalgen.codegen_py import PythonCodeGenerator, GeneratedEvaluator
from repro.evalgen.codegen_pascal import PascalCodeGenerator
from repro.evalgen.husk import CodeSizeReport, measure_code_sizes
from repro.evalgen.driver import AlternatingPassDriver, CheckpointManager

__all__ = [
    "EvaluatorRuntime",
    "EvaluationResult",
    "OracleEvaluator",
    "DeadnessAnalysis",
    "analyze_deadness",
    "StaticAllocation",
    "SubsumptionConfig",
    "choose_static_attributes",
    "EvaluationPlan",
    "PassPlan",
    "build_pass_plans",
    "InterpretiveEvaluator",
    "PythonCodeGenerator",
    "GeneratedEvaluator",
    "PascalCodeGenerator",
    "CodeSizeReport",
    "measure_code_sizes",
    "AlternatingPassDriver",
    "CheckpointManager",
]
