"""The multi-pass evaluation driver.

Chains the alternating passes: each pass reads the previous pass's
output spool **backwards** (the §II reversal trick) — except the first
pass under the prefix-emission strategy, which reads the parser's
prefix file forwards — and writes its own postfix-order spool.  Two
intermediate files are live per pass, exactly as in the paper.

The driver is also the telemetry hub of an evaluation: it owns (or is
handed) a :class:`~repro.obs.metrics.MetricsRegistry` into which its
:class:`IOAccountant`, :class:`MemoryGauge`, and per-pass statistics
register as snapshot sources (``io.*``, ``mem.*``, ``pass.*``), and —
when given a :class:`~repro.obs.trace.Tracer` — wraps the run in an
``evaluation overlay`` span containing one span per pass (EXP-T3,
EXP-M1).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.ag.model import AttributeGrammar
from repro.apt.linear import TreeNode
from repro.apt.node import APTNode
from repro.apt.storage import MemorySpool, Spool
from repro.errors import EvaluationError
from repro.evalgen.plan import PassPlan
from repro.evalgen.runtime import (
    EvaluationResult,
    EvaluatorRuntime,
    FunctionLibrary,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry
from repro.passes.schedule import Direction
from repro.util.iotrack import IOAccountant, MemoryGauge

#: A pass executor: (plan, runtime) -> root node after the pass.
PassExecutor = Callable[[PassPlan, EvaluatorRuntime], APTNode]

#: Creates the intermediate spool for a pass.
SpoolFactory = Callable[[str], Spool]


class AlternatingPassDriver:
    """Runs all passes of an evaluator over an initial APT spool."""

    def __init__(
        self,
        ag: AttributeGrammar,
        pass_plans: List[PassPlan],
        executor: PassExecutor,
        library: Optional[FunctionLibrary] = None,
        spool_factory: Optional[SpoolFactory] = None,
        accountant: Optional[IOAccountant] = None,
        gauge: Optional[MemoryGauge] = None,
        trace: Optional[List[TraceEvent]] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.ag = ag
        self.pass_plans = pass_plans
        self.executor = executor
        self.library = library or FunctionLibrary()
        self.accountant = accountant if accountant is not None else IOAccountant()
        self.gauge = gauge if gauge is not None else MemoryGauge()
        self.trace = trace
        self.tracer = tracer
        #: Unified registry: io.*, mem.*, and pass.* sources live here.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.accountant.bind(self.metrics, "io")
        self.gauge.bind(self.metrics, "mem")
        self.metrics.register_source("pass", self._pass_source)
        self._spool_factory = spool_factory or (
            lambda channel: MemorySpool(self.accountant, channel, tracer=self.tracer)
        )
        #: Seconds spent in each pass, filled by :meth:`run`.
        self.pass_times: List[float] = []
        #: Per-pass time/I/O/memory rows, filled by :meth:`run`.
        self.pass_stats: List[Dict[str, Any]] = []
        self.final_spool: Optional[Spool] = None

    def _pass_source(self) -> Dict[str, Any]:
        """Snapshot source: ``pass.<k>.seconds``, I/O deltas, peaks."""
        out: Dict[str, Any] = {"n_passes": len(self.pass_stats)}
        for stats in self.pass_stats:
            k = stats["pass"]
            for key, value in stats.items():
                if key != "pass":
                    out[f"{k}.{key}"] = value
        return out

    def run(self, initial: Spool, strategy: str = "bottom-up") -> EvaluationResult:
        """Evaluate: ``initial`` is the parser-emitted APT file.

        ``strategy`` must match how the file was emitted: ``"bottom-up"``
        (postfix; first pass right-to-left) or ``"prefix"`` (first pass
        left-to-right).  §II: "Part of its input is an indication of
        which strategy is to be used."
        """
        if not self.pass_plans:
            raise EvaluationError("no passes to run (attribute-free grammar)")
        first_dir = self.pass_plans[0].direction
        if strategy == "bottom-up" and first_dir is not Direction.R2L:
            raise EvaluationError(
                "bottom-up initial files require a right-to-left first pass"
            )
        if strategy == "prefix" and first_dir is not Direction.L2R:
            raise EvaluationError(
                "prefix initial files require a left-to-right first pass"
            )
        tracer = self.tracer
        if tracer is None:
            return self._run_passes(initial, strategy)
        with tracer.span(
            "evaluation overlay",
            cat="overlay",
            grammar=self.ag.name,
            strategy=strategy,
            n_passes=len(self.pass_plans),
        ):
            return self._run_passes(initial, strategy)

    def _run_passes(self, initial: Spool, strategy: str) -> EvaluationResult:
        tracer = self.tracer
        acc = self.accountant
        self.pass_times = []
        self.pass_stats = []
        spool_in = initial
        root: Optional[APTNode] = None
        for plan in self.pass_plans:
            if plan.pass_k == 1 and strategy == "prefix":
                reader = spool_in.read_forward()
            else:
                reader = spool_in.read_backward()
            spool_out = self._spool_factory(f"pass{plan.pass_k}.out")
            if tracer is not None and spool_out.tracer is None:
                spool_out.tracer = tracer
            runtime = EvaluatorRuntime(
                reader,
                spool_out,
                self.library,
                self.gauge,
                self.trace,
                tracer=tracer,
                metrics=self.metrics,
            )
            io_before = (
                acc.records_read,
                acc.records_written,
                acc.bytes_read,
                acc.bytes_written,
            )
            if tracer is not None:
                tracer.begin(
                    f"pass {plan.pass_k}",
                    cat="pass",
                    direction=plan.direction.value,
                )
            started = time.perf_counter()
            from repro.util.recursion import deep_recursion

            try:
                with deep_recursion():
                    root = self.executor(plan, runtime)
            finally:
                seconds = time.perf_counter() - started
                if tracer is not None:
                    tracer.end()
            self.pass_times.append(seconds)
            self.pass_stats.append(
                {
                    "pass": plan.pass_k,
                    "direction": plan.direction.value,
                    "seconds": seconds,
                    "records_read": acc.records_read - io_before[0],
                    "records_written": acc.records_written - io_before[1],
                    "bytes_read": acc.bytes_read - io_before[2],
                    "bytes_written": acc.bytes_written - io_before[3],
                    "peak_bytes": self.gauge.peak_bytes,
                }
            )
            if not runtime.at_end():
                raise EvaluationError(
                    f"pass {plan.pass_k} did not consume the whole APT file"
                )
            spool_out.finalize()
            if spool_in is not initial:
                spool_in.close()
            spool_in = spool_out
        self.final_spool = spool_in
        assert root is not None
        return EvaluationResult(root.attrs, n_passes=len(self.pass_plans))


def reconstruct_tree(ag: AttributeGrammar, spool: Spool) -> TreeNode:
    """Rebuild the attributed tree from a postfix-order output spool.

    Used by tests to diff the file paradigm's full result against the
    oracle's in-memory attribution.
    """
    stack: List[TreeNode] = []
    pending_limb: Optional[APTNode] = None
    for record in spool.read_forward():
        symbol, production, attrs, is_limb = record
        node = APTNode(symbol, production, dict(attrs), is_limb)
        if is_limb:
            pending_limb = node
            continue
        if production is None:
            stack.append(TreeNode(node))
            continue
        prod = ag.productions[production]
        n = len(prod.rhs)
        children = stack[len(stack) - n :] if n else []
        del stack[len(stack) - n :]
        limb = None
        if prod.limb:
            if pending_limb is None or pending_limb.symbol != prod.limb:
                raise EvaluationError(
                    f"spool misses limb node for production {prod.index}"
                )
            limb = pending_limb
        pending_limb = None
        stack.append(TreeNode(node, children, limb))
    if len(stack) != 1:
        raise EvaluationError(
            f"spool did not reconstruct to a single tree ({len(stack)} fragments)"
        )
    return stack[0]
