"""The multi-pass evaluation driver.

Chains the alternating passes: each pass reads the previous pass's
output spool **backwards** (the §II reversal trick) — except the first
pass under the prefix-emission strategy, which reads the parser's
prefix file forwards — and writes its own postfix-order spool.  Two
intermediate files are live per pass, exactly as in the paper.

The driver is also the telemetry hub of an evaluation: it owns (or is
handed) a :class:`~repro.obs.metrics.MetricsRegistry` into which its
:class:`IOAccountant`, :class:`MemoryGauge`, and per-pass statistics
register as snapshot sources (``io.*``, ``mem.*``, ``pass.*``), and —
when given a :class:`~repro.obs.trace.Tracer` — wraps the run in an
``evaluation overlay`` span containing one span per pass (EXP-T3,
EXP-M1).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.ag.model import AttributeGrammar
from repro.apt.linear import TreeNode
from repro.apt.node import APTNode
from repro.apt.storage import (
    DiskSpool,
    MemorySpool,
    Spool,
    adaptive_spool_factory,
)
from repro.errors import EvaluationError, ResumeError, SpoolCorruptionError
from repro.evalgen.plan import PassPlan
from repro.evalgen.runtime import (
    EvaluationResult,
    EvaluatorRuntime,
    FunctionLibrary,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry
from repro.passes.schedule import Direction
from repro.util.atomic_write import atomic_write
from repro.util.iotrack import IOAccountant, MemoryGauge

#: A pass executor: (plan, runtime) -> root node after the pass.
PassExecutor = Callable[[PassPlan, EvaluatorRuntime], APTNode]

#: Creates the intermediate spool for a pass.
SpoolFactory = Callable[[str], Spool]


class CheckpointManager:
    """Persists per-pass progress so a killed evaluation can resume.

    The manager owns a directory holding one sealed
    :class:`~repro.apt.storage.DiskSpool` per completed pass
    (``pass<k>.spool``) plus a small JSON **manifest**
    (``checkpoint.json``) recording, for each completed pass, its
    index, direction, spool file name, record count, payload bytes,
    and whole-stream CRC32 — enough to verify the spool before
    trusting it.  The manifest itself is written atomically
    (``*.tmp`` + ``os.replace``) after every completed pass, so it
    never names a pass whose spool is not fully sealed.

    On ``resume``, :meth:`resume_state` validates the manifest against
    the live grammar and pass plans, re-verifies the *last* completed
    spool record by record, and hands back the pass index to restart
    from plus the reopened spool.  Any mismatch raises
    :class:`~repro.errors.ResumeError` — a stale or foreign checkpoint
    must never silently poison an evaluation.
    """

    MANIFEST = "checkpoint.json"
    VERSION = 1

    def __init__(self, directory: str, tracer=None, metrics=None,
                 disk_budget=None):
        self.directory = directory
        self.tracer = tracer
        self.metrics = metrics
        #: Optional :class:`repro.governance.DiskBudget`: every sealed
        #: pass spool is charged, so checkpoints count against the
        #: run's disk cap alongside temp spools.
        self.disk_budget = disk_budget
        os.makedirs(directory, exist_ok=True)
        self._completed: List[Dict[str, Any]] = []
        self._header: Dict[str, Any] = {}

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, self.MANIFEST)

    def spool_path(self, pass_k: int) -> str:
        return os.path.join(self.directory, f"pass{pass_k}.spool")

    # -- writing -----------------------------------------------------------

    def start_run(self, ag_name: str, strategy: str, plans: List[PassPlan]) -> None:
        """Begin a fresh checkpointed run (clears prior progress)."""
        self._header = {
            "version": self.VERSION,
            "grammar": ag_name,
            "strategy": strategy,
            "n_passes": len(plans),
            "directions": [p.direction.value for p in plans],
        }
        self._completed = []
        self._write_manifest()

    def make_spool(
        self, plan: PassPlan, accountant, channel: str, tracer=None, metrics=None
    ) -> DiskSpool:
        """The durable output spool for ``plan`` (kept after close)."""
        return DiskSpool(
            self.spool_path(plan.pass_k),
            accountant,
            channel,
            tracer=tracer,
            metrics=metrics,
        )

    def record_pass(self, plan: PassPlan, spool: Spool) -> None:
        """Note that ``plan`` completed with ``spool`` sealed on disk."""
        if self.disk_budget is not None:
            path = getattr(spool, "path", None)
            if path and os.path.exists(path):
                self.disk_budget.charge(os.path.getsize(path))
        entry = {
            "pass": plan.pass_k,
            "direction": plan.direction.value,
            "spool": os.path.basename(getattr(spool, "path", "")),
            "n_records": spool.n_records,
            "data_bytes": spool.data_bytes,
            "stream_crc": getattr(spool, "_stream_crc", 0),
        }
        self._completed.append(entry)
        self._write_manifest()
        if self.metrics is not None:
            self.metrics.counter("robust.checkpoint_passes_written").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "checkpoint.pass", cat="robust",
                pass_k=plan.pass_k, n_records=spool.n_records,
            )

    def _write_manifest(self) -> None:
        doc = dict(self._header)
        doc["completed"] = self._completed
        with atomic_write(
            self.manifest_path, text=True, encoding="utf-8"
        ) as f:
            json.dump(doc, f, indent=2)

    # -- resuming ----------------------------------------------------------

    def load_manifest(self) -> Dict[str, Any]:
        if not os.path.exists(self.manifest_path):
            raise ResumeError(
                f"no checkpoint manifest at {self.manifest_path}"
            )
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            raise ResumeError(f"unreadable checkpoint manifest: {exc}") from exc
        if doc.get("version") != self.VERSION:
            raise ResumeError(
                f"checkpoint manifest version {doc.get('version')!r} "
                f"!= {self.VERSION}"
            )
        return doc

    def resume_state(
        self, ag_name: str, strategy: str, plans: List[PassPlan]
    ) -> tuple:
        """Validate the manifest; return ``(completed_k, spool_or_None)``.

        ``completed_k`` is the number of leading passes already sealed
        on disk (0 means start from scratch); when positive, the second
        element is the reopened, fully re-verified output spool of pass
        ``completed_k``.
        """
        doc = self.load_manifest()
        if doc.get("grammar") != ag_name:
            raise ResumeError(
                f"checkpoint is for grammar {doc.get('grammar')!r}, "
                f"not {ag_name!r}"
            )
        if doc.get("strategy") != strategy:
            raise ResumeError(
                f"checkpoint used strategy {doc.get('strategy')!r}, "
                f"this run uses {strategy!r}"
            )
        if doc.get("n_passes") != len(plans) or doc.get("directions") != [
            p.direction.value for p in plans
        ]:
            raise ResumeError(
                "checkpoint pass structure does not match the current "
                "evaluator (grammar or pass assignment changed)"
            )
        completed = doc.get("completed", [])
        for i, entry in enumerate(completed):
            if entry.get("pass") != i + 1:
                raise ResumeError(
                    f"manifest completed-pass list is not contiguous "
                    f"at position {i}"
                )
        # Adopt the on-disk state so subsequent record_pass() calls
        # extend (rather than restart) the completed list.
        self._header = {key: doc[key] for key in doc if key != "completed"}
        self._completed = list(completed)
        k = len(completed)
        if k == 0:
            return 0, None
        last = completed[-1]
        path = os.path.join(self.directory, last.get("spool", ""))
        try:
            spool = DiskSpool.open(
                path, channel=f"pass{k}.out",
                tracer=self.tracer, metrics=self.metrics,
            )
        except SpoolCorruptionError as exc:
            raise ResumeError(
                f"checkpointed spool for pass {k} failed verification: {exc}"
            ) from exc
        if (
            spool.n_records != last.get("n_records")
            or spool.data_bytes != last.get("data_bytes")
            or spool._stream_crc != last.get("stream_crc")
        ):
            raise ResumeError(
                f"checkpointed spool for pass {k} does not match the "
                f"manifest (expected {last.get('n_records')} records / "
                f"crc {last.get('stream_crc'):#010x}, found "
                f"{spool.n_records} / {spool._stream_crc:#010x})"
            )
        # Full sweep: every record's framing and checksum must hold
        # before we trust the file as pass k's output.
        try:
            for _ in spool._iter_blobs_forward():
                pass
        except SpoolCorruptionError as exc:
            raise ResumeError(
                f"checkpointed spool for pass {k} is damaged at "
                f"{exc.locus()}: {exc}"
            ) from exc
        return k, spool


class AlternatingPassDriver:
    """Runs all passes of an evaluator over an initial APT spool."""

    def __init__(
        self,
        ag: AttributeGrammar,
        pass_plans: List[PassPlan],
        executor: PassExecutor,
        library: Optional[FunctionLibrary] = None,
        spool_factory: Optional[SpoolFactory] = None,
        accountant: Optional[IOAccountant] = None,
        gauge: Optional[MemoryGauge] = None,
        trace: Optional[List[TraceEvent]] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint: Optional[CheckpointManager] = None,
        checkpoint_dir: Optional[str] = None,
        recorder=None,
        disk_budget=None,
        memo=None,
    ):
        self.ag = ag
        self.pass_plans = pass_plans
        self.executor = executor
        self.library = library or FunctionLibrary()
        self.accountant = accountant if accountant is not None else IOAccountant()
        self.gauge = gauge if gauge is not None else MemoryGauge()
        self.trace = trace
        self.tracer = tracer
        #: Unified registry: io.*, mem.*, and pass.* sources live here.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.accountant.bind(self.metrics, "io")
        self.gauge.bind(self.metrics, "mem")
        self.metrics.register_source("pass", self._pass_source)
        self._spool_factory = spool_factory or adaptive_spool_factory(
            self.accountant, tracer=self.tracer, metrics=self.metrics
        )
        if checkpoint is None and checkpoint_dir is not None:
            checkpoint = CheckpointManager(
                checkpoint_dir, tracer=tracer, metrics=self.metrics,
                disk_budget=disk_budget,
            )
        #: Optional durable-progress manager (see :class:`CheckpointManager`).
        self.checkpoint = checkpoint
        #: Optional provenance recorder (repro.obs.ProvenanceRecorder).
        self.recorder = recorder
        #: Optional incremental-translation memo
        #: (:class:`repro.passes.incremental.MemoStore`).  Every pass of
        #: a fresh run consults/refreshes it; resumed runs evaluate
        #: cold (a documented invalidation rule).
        self.memo = memo
        #: Per-pass memo sessions of the last run (empty when memo was
        #: off or inapplicable); each exposes hit/miss/splice tallies.
        self.memo_sessions: List[Any] = []
        #: The first pass's session, kept for convenience.
        self.memo_session = None
        #: Seconds spent in each pass, filled by :meth:`run`.
        self.pass_times: List[float] = []
        #: Per-pass time/I/O/memory rows, filled by :meth:`run`.
        self.pass_stats: List[Dict[str, Any]] = []
        self.final_spool: Optional[Spool] = None

    def _pass_source(self) -> Dict[str, Any]:
        """Snapshot source: ``pass.<k>.seconds``, I/O deltas, peaks."""
        out: Dict[str, Any] = {"n_passes": len(self.pass_stats)}
        for stats in self.pass_stats:
            k = stats["pass"]
            for key, value in stats.items():
                if key != "pass":
                    out[f"{k}.{key}"] = value
        return out

    def run(
        self,
        initial: Spool,
        strategy: str = "bottom-up",
        resume: bool = False,
    ) -> EvaluationResult:
        """Evaluate: ``initial`` is the parser-emitted APT file.

        ``strategy`` must match how the file was emitted: ``"bottom-up"``
        (postfix; first pass right-to-left) or ``"prefix"`` (first pass
        left-to-right).  §II: "Part of its input is an indication of
        which strategy is to be used."

        With a checkpoint manager attached and ``resume=True``, the
        driver verifies the on-disk manifest and the last sealed pass
        spool and restarts from the first incomplete pass instead of
        pass 1 (raising :class:`~repro.errors.ResumeError` on any
        mismatch); ``resume=False`` starts a fresh checkpointed run.
        """
        if not self.pass_plans:
            raise EvaluationError("no passes to run (attribute-free grammar)")
        first_dir = self.pass_plans[0].direction
        if strategy == "bottom-up" and first_dir is not Direction.R2L:
            raise EvaluationError(
                "bottom-up initial files require a right-to-left first pass"
            )
        if strategy == "prefix" and first_dir is not Direction.L2R:
            raise EvaluationError(
                "prefix initial files require a left-to-right first pass"
            )
        tracer = self.tracer
        if tracer is None:
            return self._run_passes(initial, strategy, resume)
        with tracer.span(
            "evaluation overlay",
            cat="overlay",
            grammar=self.ag.name,
            strategy=strategy,
            n_passes=len(self.pass_plans),
        ):
            return self._run_passes(initial, strategy, resume)

    def _resume_point(self, strategy: str, resume: bool):
        """(start index, input spool override) per the checkpoint state."""
        if self.checkpoint is None:
            if resume:
                raise ResumeError(
                    "resume requested but the driver has no checkpoint "
                    "manager (pass checkpoint_dir=...)"
                )
            return 0, None
        if not resume:
            self.checkpoint.start_run(self.ag.name, strategy, self.pass_plans)
            return 0, None
        completed_k, spool = self.checkpoint.resume_state(
            self.ag.name, strategy, self.pass_plans
        )
        if completed_k:
            self.metrics.counter("robust.resume_passes_skipped").inc(completed_k)
            self.metrics.counter("robust.resume_runs").inc()
            if self.tracer is not None:
                self.tracer.instant(
                    "checkpoint.resume", cat="robust",
                    passes_skipped=completed_k,
                )
        return completed_k, spool

    def _root_attrs_from_spool(self, spool: Spool) -> Dict[str, Any]:
        """Root attributes straight off a finished final spool.

        The final spool is in postfix order, so its last record — the
        first one a backward read yields — is the root.  Used when a
        resume finds *every* pass already sealed on disk.
        """
        for record in spool.read_backward():
            _symbol, _production, attrs, is_limb = record
            if not is_limb:
                return dict(attrs)
        raise EvaluationError("checkpointed final spool holds no root record")

    def _run_passes(
        self, initial: Spool, strategy: str, resume: bool = False
    ) -> EvaluationResult:
        tracer = self.tracer
        acc = self.accountant
        self.pass_times = []
        self.pass_stats = []
        start_index, resumed_spool = self._resume_point(strategy, resume)
        rec = self.recorder
        if rec is not None:
            rec.begin_run(
                strategy,
                [p.direction.value for p in self.pass_plans],
                resumed_from=start_index,
            )
        spool_in = resumed_spool if resumed_spool is not None else initial
        if start_index >= len(self.pass_plans) and resumed_spool is not None:
            # Everything already completed: recover the root attributes
            # from the sealed final spool without rerunning any pass.
            if rec is not None:
                rec.seal()
            self.final_spool = resumed_spool
            return EvaluationResult(
                self._root_attrs_from_spool(resumed_spool),
                n_passes=len(self.pass_plans),
            )
        root: Optional[APTNode] = None
        memo = self.memo
        self.memo_sessions = []
        self.memo_session = None
        memo_commits: List[Any] = []
        for plan in self.pass_plans[start_index:]:
            if plan.pass_k == 1 and strategy == "prefix":
                reader = spool_in.read_forward()
            else:
                reader = spool_in.read_backward()
            # The memo applies to every pass of a fresh run: each pass
            # reads a subtree-contiguous spool (the parser's postfix or
            # prefix emission for pass 1, the previous pass's postfix
            # output after that), which is exactly what the subtree
            # index is computed over.  Resumed runs always evaluate
            # cold (a documented invalidation rule).
            memo_pass = memo is not None and resumed_spool is None
            if self.checkpoint is not None:
                spool_out: Spool = self.checkpoint.make_spool(
                    plan, acc, f"pass{plan.pass_k}.out",
                    tracer=tracer, metrics=self.metrics,
                )
            elif memo_pass:
                # Each pass seals into the memo's next generation file
                # so it can serve as the next run's splice source (never
                # the file currently being spliced *from*).
                spool_out = memo.make_output_spool(
                    plan.pass_k, acc, f"pass{plan.pass_k}.out",
                    tracer=tracer, metrics=self.metrics,
                )
            else:
                spool_out = self._spool_factory(f"pass{plan.pass_k}.out")
            if tracer is not None and spool_out.tracer is None:
                spool_out.tracer = tracer
            if rec is not None:
                rec.begin_pass(plan.pass_k, plan.direction.value)
            runtime = EvaluatorRuntime(
                reader,
                spool_out,
                self.library,
                self.gauge,
                self.trace,
                tracer=tracer,
                metrics=self.metrics,
                recorder=rec,
            )
            memo_session = None
            if memo_pass:
                # A checkpointed (or recorded) run writes its passes
                # into the checkpoint directory, so the memo is
                # consulted but not refreshed (read-only).
                memo_session = memo.begin_session(
                    plan, runtime, spool_in,
                    read_only=self.checkpoint is not None,
                    forward=(plan.pass_k == 1 and strategy == "prefix"),
                )
                if memo_session is not None:
                    self.memo_sessions.append(memo_session)
                    if self.memo_session is None:
                        self.memo_session = memo_session
                runtime.memo = memo_session
            io_before = (
                acc.records_read,
                acc.records_written,
                acc.bytes_read,
                acc.bytes_written,
            )
            if tracer is not None:
                tracer.begin(
                    f"pass {plan.pass_k}",
                    cat="pass",
                    direction=plan.direction.value,
                )
            started = time.perf_counter()
            from repro.util.recursion import deep_recursion

            try:
                try:
                    with deep_recursion():
                        root = self.executor(plan, runtime)
                finally:
                    seconds = time.perf_counter() - started
                    if tracer is not None:
                        tracer.end()
                self.pass_times.append(seconds)
                self.pass_stats.append(
                    {
                        "pass": plan.pass_k,
                        "direction": plan.direction.value,
                        "seconds": seconds,
                        "records_read": acc.records_read - io_before[0],
                        "records_written": acc.records_written - io_before[1],
                        "bytes_read": acc.bytes_read - io_before[2],
                        "bytes_written": acc.bytes_written - io_before[3],
                        "peak_bytes": self.gauge.peak_bytes,
                    }
                )
                if not runtime.at_end():
                    raise EvaluationError(
                        f"pass {plan.pass_k} did not consume the whole APT file"
                    )
                spool_out.finalize()
            except BaseException:
                # A failed pass must not leak its half-written output
                # spool (or the previous intermediate) as stray
                # apt_*.spool temp files.
                if rec is not None:
                    rec.abort()
                spool_out.close()
                if spool_in is not initial:
                    spool_in.close()
                raise
            if self.checkpoint is not None:
                self.checkpoint.record_pass(plan, spool_out)
            elif memo_pass and memo_session is not None:
                memo_commits.append((memo_session, spool_out))
            if spool_in is not initial:
                spool_in.close()
            spool_in = spool_out
        if memo_commits:
            # Seal the whole run's generation at once: the manifest
            # must reference every pass's fresh spool or none.
            memo.commit_run(memo_commits)
        if rec is not None:
            rec.seal()
        self.final_spool = spool_in
        assert root is not None
        return EvaluationResult(root.attrs, n_passes=len(self.pass_plans))


def reconstruct_tree(ag: AttributeGrammar, spool: Spool) -> TreeNode:
    """Rebuild the attributed tree from a postfix-order output spool.

    Used by tests to diff the file paradigm's full result against the
    oracle's in-memory attribution.
    """
    stack: List[TreeNode] = []
    pending_limb: Optional[APTNode] = None
    for record in spool.read_forward():
        symbol, production, attrs, is_limb = record
        node = APTNode(symbol, production, dict(attrs), is_limb)
        if is_limb:
            pending_limb = node
            continue
        if production is None:
            stack.append(TreeNode(node))
            continue
        prod = ag.productions[production]
        n = len(prod.rhs)
        children = stack[len(stack) - n :] if n else []
        del stack[len(stack) - n :]
        limb = None
        if prod.limb:
            if pending_limb is None or pending_limb.symbol != prod.limb:
                raise EvaluationError(
                    f"spool misses limb node for production {prod.index}"
                )
            limb = pending_limb
        pending_limb = None
        stack.append(TreeNode(node, children, limb))
    if len(stack) != 1:
        raise EvaluationError(
            f"spool did not reconstruct to a single tree ({len(stack)} fragments)"
        )
    return stack[0]
