"""Temporary vs significant attributes — §III's first optimization.

"An obvious [optimization] is to reduce the amount of data transferred
between the intermediate files and memory by not writing any instances
of attributes that are defined during this pass but never referenced
after this pass."  Saarinen's terminology: an attribute is
*significant* if referenced in a later pass than the one defining it,
else *temporary*.

For every symbol and every pass boundary ``k`` we compute the record
fields that must flow from pass ``k`` to pass ``k+1``: attributes with
``pass ≤ k`` whose **last use** lies in a later pass.  The root's
synthesized attributes are the translation result, so their last use is
pinned past the final pass; intrinsic attributes originate at boundary
0 (the parser-built file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ag.copyrules import production_bindings
from repro.ag.model import (
    AttrKind,
    AttributeGrammar,
    LIMB_POSITION,
    SymbolKind,
)
from repro.passes.partition import PassAssignment
from repro.passes.schedule import AttrId, INTRINSIC_PASS


@dataclass
class DeadnessAnalysis:
    grammar: AttributeGrammar
    assignment: PassAssignment
    #: Last pass in which each attribute is referenced (0 = never used).
    last_use: Dict[AttrId, int]
    #: Whether suppression of dead fields is enabled (ABL-1 toggle).
    enabled: bool = True

    def is_significant(self, attr_id: AttrId) -> bool:
        """Referenced in a later pass than the one defining it?"""
        defined = self.assignment.attr_pass.get(attr_id, 0)
        return self.last_use.get(attr_id, 0) > defined

    def fields_after_pass(self, symbol: str, pass_k: int) -> List[str]:
        """Record fields for ``symbol`` flowing out of pass ``pass_k``
        (boundary 0 = the parser-emitted initial file)."""
        sym = self.grammar.symbol(symbol)
        out: List[str] = []
        for attr in sym.attributes.values():
            attr_id = (symbol, attr.name)
            defined = self.assignment.attr_pass.get(attr_id, 0)
            if defined > pass_k:
                continue  # not yet evaluated at this boundary
            if not self.enabled:
                out.append(attr.name)
                continue
            if self.last_use.get(attr_id, 0) > pass_k:
                out.append(attr.name)
        return out

    def temporary_attributes(self) -> List[AttrId]:
        return sorted(
            a for a in self.assignment.attr_pass if not self.is_significant(a)
        )

    def significant_attributes(self) -> List[AttrId]:
        return sorted(a for a in self.assignment.attr_pass if self.is_significant(a))


def analyze_deadness(
    ag: AttributeGrammar,
    assignment: PassAssignment,
    enabled: bool = True,
) -> DeadnessAnalysis:
    last_use: Dict[AttrId, int] = {}

    def use(attr_id: AttrId, pass_k: int) -> None:
        if last_use.get(attr_id, 0) < pass_k:
            last_use[attr_id] = pass_k

    for prod in ag.productions:
        for binding in production_bindings(prod):
            target_pass = assignment.pass_of(
                binding.target.symbol, binding.target.attr_name
            )
            for ref in binding.expr.refs():
                if ref.position is None:
                    continue
                if ref.position == LIMB_POSITION:
                    ref_symbol = prod.limb
                elif ref.position == 0:
                    ref_symbol = prod.lhs
                else:
                    ref_symbol = prod.rhs[ref.position - 1]
                use((ref_symbol, ref.attr_name), target_pass)

    # The translation result: root synthesized attributes outlive pass n.
    root = ag.symbol(ag.start)
    for attr in root.synthesized:
        use((ag.start, attr.name), assignment.n_passes + 1)

    return DeadnessAnalysis(ag, assignment, last_use, enabled)
