"""Shared expression interpreter over the semantic-function AST.

Both the oracle evaluator and the Schulz-style interpretive pass
evaluator execute expressions through :func:`eval_expr`; they differ
only in how an attribute reference is looked up.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ag.expr import AttrRef, BinOp, Call, Const, Expr, If, Not
from repro.errors import EvaluationError

#: lookup(position, attr_name) -> value
Lookup = Callable[[int, str], Any]
#: call(function_name, *args) -> value
Caller = Callable[..., Any]
#: constant(name) -> value
ConstFn = Callable[[str], Any]


def eval_expr(expr: Expr, lookup: Lookup, call: Caller, constant: ConstFn) -> Any:
    """Evaluate a (single-valued) expression."""
    if isinstance(expr, Const):
        if expr.is_symbolic:
            return constant(expr.value)
        return expr.value
    if isinstance(expr, AttrRef):
        if expr.position is None:
            raise EvaluationError(f"unresolved attribute reference {expr}")
        return lookup(expr.position, expr.attr_name)
    if isinstance(expr, Not):
        return not eval_expr(expr.body, lookup, call, constant)
    if isinstance(expr, BinOp):
        return _eval_binop(expr, lookup, call, constant)
    if isinstance(expr, Call):
        args = [eval_expr(a, lookup, call, constant) for a in expr.args]
        return call(expr.func, *args)
    if isinstance(expr, If):
        if expr.arity() != 1:
            raise EvaluationError(
                "multi-valued if-expression must be projected per target "
                "before evaluation"
            )
        if eval_expr(expr.cond, lookup, call, constant):
            return eval_expr(expr.then_branch[0], lookup, call, constant)
        if isinstance(expr.else_branch, If):
            return eval_expr(expr.else_branch, lookup, call, constant)
        return eval_expr(expr.else_branch[0], lookup, call, constant)
    raise TypeError(f"unknown expression node {expr!r}")


def _eval_binop(expr: BinOp, lookup: Lookup, call: Caller, constant: ConstFn) -> Any:
    op = expr.op
    left = eval_expr(expr.left, lookup, call, constant)
    # AND/OR short-circuit, like the target-language operators would.
    if op == "AND":
        return bool(left) and bool(eval_expr(expr.right, lookup, call, constant))
    if op == "OR":
        return bool(left) or bool(eval_expr(expr.right, lookup, call, constant))
    right = eval_expr(expr.right, lookup, call, constant)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "DIV":
        if isinstance(left, int) and isinstance(right, int):
            return left // right
        return left / right
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    raise EvaluationError(f"unknown operator {op!r}")
