"""Generation of executable Python evaluator modules.

LINGUIST-86 "generates in-line code to read and write APT nodes and to
evaluate semantic functions", organized as "a set of mutually recursive
procedures called production-procedures … distinct sets … for each
pass".  This module renders each :class:`~repro.evalgen.plan.PassPlan`
as a Python class whose methods are the production-procedures; the text
is ``exec``-compiled and driven by the same
:class:`~repro.evalgen.driver.AlternatingPassDriver` as the interpreter.

Every emitted line is categorized **husk** (node I/O, dispatch,
procedure scaffolding — §V: "everything except the semantic functions")
or **sem** (semantic-function evaluation, including the save/restore
and snapshot traffic of static subsumption); subsumed copy-rules are
emitted as comments, contributing zero bytes, exactly as in the paper's
ListProd example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ag.expr import AttrRef, BinOp, Call, Const, Expr, If, Not
from repro.ag.model import (
    AttributeGrammar,
    LHS_POSITION,
    LIMB_POSITION,
    Production,
    SymbolKind,
)
from repro.errors import GenerationError
from repro.evalgen.plan import ActionKind, EvaluationPlan, PassPlan, sanitize
from repro.evalgen.runtime import EvaluatorRuntime

#: Line categories for the §V size accounting.
HUSK = "husk"
SEM = "sem"
NOTE = "note"  # comments — zero weight
DECL = "decl"  # declarations — data, not code; zero weight like the 8086
PROV = "prov"  # provenance-recording hooks — zero weight, recording mode only


@dataclass
class CodeArtifact:
    """Generated source text of one pass module, with size accounting."""

    pass_k: int
    text: str
    husk_bytes: int
    sem_bytes: int
    n_subsumed: int

    @property
    def total_bytes(self) -> int:
        return self.husk_bytes + self.sem_bytes


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[Tuple[str, str]] = []

    def emit(self, line: str, category: str, indent: int = 0) -> None:
        self.lines.append(("    " * indent + line, category))

    def text(self) -> str:
        return "\n".join(line for line, _ in self.lines) + "\n"

    def bytes_of(self, category: str) -> int:
        return sum(
            len(line.strip()) + 1
            for line, cat in self.lines
            if cat == category and line.strip()
        )


def _var(position: int) -> str:
    if position == LIMB_POSITION:
        return "nL"
    return f"n{position}"


class PythonCodeGenerator:
    """Renders pass plans as Python evaluator classes.

    With ``recording=True`` the generator additionally emits provenance
    hooks (``rec.define``/``rec.put``/``rec.enter_child``) at every
    attribute-definition and node-I/O site, mirroring the interpreter's
    hook placement exactly so the two backends produce byte-comparable
    provenance logs.  Recording output is a *separate* variant: normal
    (``recording=False``) output is byte-identical to what this
    generator always produced — it is golden-pinned and cached.

    With ``memo=True`` the generator emits incremental-memo hooks at
    every child ``VISIT`` (enter/leave calls into the runtime's
    :class:`~repro.passes.incremental.MemoSession`), mirroring the
    interpreter's hook placement so the two backends hit, splice, and
    record identically.  Like recording, memo output is a separate
    lazily-built variant: it is never cached, and the hot non-memo
    executor stays byte-identical to the pinned golden text.
    """

    def __init__(
        self,
        ag: AttributeGrammar,
        recording: bool = False,
        memo: bool = False,
    ):
        self.ag = ag
        self.recording = recording
        self.memo = memo

    # -- expressions ----------------------------------------------------------

    def compile_expr(self, expr: Expr, refmap: Dict[Tuple[int, str], tuple]) -> str:
        if isinstance(expr, Const):
            if expr.is_symbolic:
                return f"rt.constant({expr.value!r})"
            return repr(expr.value)
        if isinstance(expr, AttrRef):
            key = (expr.position, expr.attr_name)
            try:
                source = refmap[key]
            except KeyError:
                raise GenerationError(f"unresolved reference {expr} in codegen") from None
            return self._source_code(source)
        if isinstance(expr, Not):
            return f"(not {self.compile_expr(expr.body, refmap)})"
        if isinstance(expr, BinOp):
            left = self.compile_expr(expr.left, refmap)
            right = self.compile_expr(expr.right, refmap)
            op = expr.op
            if op == "AND":
                return f"(bool({left}) and bool({right}))"
            if op == "OR":
                return f"(bool({left}) or bool({right}))"
            if op == "DIV":
                return f"rt.div({left}, {right})"
            if op == "=":
                return f"({left} == {right})"
            if op == "<>":
                return f"({left} != {right})"
            return f"({left} {op} {right})"
        if isinstance(expr, Call):
            args = ", ".join(self.compile_expr(a, refmap) for a in expr.args)
            return f"rt.call({expr.func!r}{', ' if args else ''}{args})"
        if isinstance(expr, If):
            cond = self.compile_expr(expr.cond, refmap)
            then = self.compile_expr(expr.then_branch[0], refmap)
            if isinstance(expr.else_branch, If):
                other = self.compile_expr(expr.else_branch, refmap)
            else:
                other = self.compile_expr(expr.else_branch[0], refmap)
            return f"({then} if {cond} else {other})"
        raise GenerationError(f"unknown expression node {expr!r}")

    @staticmethod
    def _source_code(source: tuple) -> str:
        kind = source[0]
        if kind == "field":
            _, pos, attr = source
            return f"{_var(pos)}.attrs[{attr!r}]"
        if kind == "temp":
            return source[1]
        if kind == "global":
            return f"self.g_{sanitize(source[1])}"
        raise GenerationError(f"unknown value source {source!r}")

    # -- procedures -------------------------------------------------------------

    def _prov_inputs(self, binding, refmap: Dict[Tuple[int, str], tuple]) -> str:
        """Code for the define hook's inputs tuple: ``(position, attr,
        value-expression)`` triples in the same deduplicated order the
        interpreter records them."""
        from repro.obs.provenance import input_keys

        items = "".join(
            f"({p}, {a!r}, {self._source_code(refmap[(p, a)])}), "
            for p, a in input_keys(binding)
        )
        return f"({items})"

    def _emit_procedure(self, em: _Emitter, plan: EvaluationPlan) -> None:
        prod = self.ag.productions[plan.production]
        em.emit(f"def p{prod.index}_{sanitize(prod.tag)}(self, n0):", HUSK, 1)
        em.emit(f'"""{prod} (pass {plan.pass_k})"""', NOTE, 2)
        em.emit("rt = self.rt", HUSK, 2)
        if self.recording:
            em.emit("rec = rt.rec", PROV, 2)
        if self.memo:
            em.emit("m = rt.memo", PROV, 2)
        body = 2
        for action in plan.actions:
            kind = action.kind
            if kind is ActionKind.GET:
                sym = self._symbol_at(prod, action.position)
                em.emit(
                    f"{_var(action.position)} = rt.get_node({sym!r})", HUSK, body
                )
            elif kind is ActionKind.PUT:
                var = _var(action.position)
                names: List[str] = []
                for attr_name, source in action.fields:
                    names.append(attr_name)
                    if source[0] != "field":
                        em.emit(
                            f"{var}.attrs[{attr_name!r}] = {self._source_code(source)}",
                            SEM,
                            body,
                        )
                if self.recording:
                    sym = self._symbol_at(prod, action.position)
                    em.emit(
                        f"rec.put({action.position}, {sym!r}, rt.out_index())",
                        PROV,
                        body,
                    )
                em.emit(f"rt.put_node({var}, {names!r})", HUSK, body)
            elif kind is ActionKind.VISIT:
                sym = self._symbol_at(prod, action.position)
                var = _var(action.position)
                if self.memo:
                    # Memo hook: candidate check + splice-or-visit.  The
                    # hit path consumes the subtree from the sealed memo
                    # spool; the miss path visits and records.
                    em.emit(
                        f"_mt = None if m is None else m.enter_gen({var}, self)",
                        PROV,
                        body,
                    )
                    em.emit("if _mt is not _MEMO_HIT:", PROV, body)
                    inner = body + 1
                else:
                    inner = body
                if self.recording:
                    em.emit(f"rec.enter_child({action.position})", PROV, inner)
                em.emit(
                    f"self.visit_{sanitize(sym)}({var})",
                    HUSK,
                    inner,
                )
                if self.recording:
                    em.emit("rec.exit_child()", PROV, inner)
                if self.memo:
                    em.emit("if _mt is not None:", PROV, inner)
                    em.emit(
                        f"m.leave_gen(_mt, {var}, self)", PROV, inner + 1
                    )
            elif kind is ActionKind.COMPUTE:
                binding = action.binding
                code = self.compile_expr(binding.expr, action.refmap)
                target = binding.target
                if action.temp:
                    em.emit(f"{action.temp} = {code}", SEM, body)
                    readback = action.temp
                else:
                    em.emit(
                        f"{_var(target.position)}.attrs[{target.attr_name!r}] = {code}",
                        SEM,
                        body,
                    )
                    readback = f"{_var(target.position)}.attrs[{target.attr_name!r}]"
                if self.recording:
                    em.emit(
                        f"rec.define({prod.index}, {target.position}, "
                        f"{target.attr_name!r}, {readback}, "
                        f"{self._prov_inputs(binding, action.refmap)}, "
                        f"'compute', {str(binding)!r}, rt.out_index())",
                        PROV,
                        body,
                    )
            elif kind is ActionKind.SUBSUME:
                em.emit(f"# {{ {action.binding} }} -- subsumed", NOTE, body)
                if self.recording:
                    if not action.group:
                        raise GenerationError(
                            "SUBSUME action carries no group (pass plans "
                            "predate provenance recording — likely a stale "
                            "build cache; clear it and rebuild)"
                        )
                    binding = action.binding
                    src = binding.copy_source()
                    gvar = f"self.g_{sanitize(action.group)}"
                    em.emit(
                        f"rec.define({prod.index}, "
                        f"{binding.target.position}, "
                        f"{binding.target.attr_name!r}, {gvar}, "
                        f"(({src.position}, {src.attr_name!r}, {gvar}), ), "
                        f"'subsume', {str(binding)!r}, rt.out_index())",
                        PROV,
                        body,
                    )
            elif kind is ActionKind.SNAPSHOT:
                em.emit(
                    f"{action.temp} = self.g_{sanitize(action.group)}", SEM, body
                )
            elif kind is ActionKind.SETGLOBAL:
                em.emit(
                    f"self.g_{sanitize(action.group)} = "
                    f"{self._source_code(action.source)}  # {action.comment}",
                    SEM,
                    body,
                )
            elif kind is ActionKind.ENTRY_SAVE:
                em.emit(
                    f"sv_{sanitize(action.group)} = self.g_{sanitize(action.group)}",
                    SEM,
                    body,
                )
            elif kind is ActionKind.EXIT_RESTORE:
                em.emit(
                    f"self.g_{sanitize(action.group)} = sv_{sanitize(action.group)}",
                    SEM,
                    body,
                )
            else:  # pragma: no cover
                raise GenerationError(f"unknown action {kind}")
        em.emit("", NOTE)

    @staticmethod
    def _symbol_at(prod: Production, position: int) -> str:
        if position == LIMB_POSITION:
            return prod.limb
        if position == LHS_POSITION:
            return prod.lhs
        return prod.rhs[position - 1]

    # -- pass module ---------------------------------------------------------------

    def generate_pass(self, plan: PassPlan) -> CodeArtifact:
        em = _Emitter()
        em.emit(
            f"# Generated attribute-evaluation pass {plan.pass_k} "
            f"({plan.direction.value}) for grammar {self.ag.name!r}.",
            NOTE,
        )
        if self.memo:
            em.emit(
                "from repro.passes.incremental import MEMO_HIT as _MEMO_HIT",
                PROV,
            )
        em.emit(f"class Pass{plan.pass_k}Evaluator:", HUSK)
        em.emit(f"PASS = {plan.pass_k}", HUSK, 1)
        em.emit("def __init__(self, rt):", HUSK, 1)
        em.emit("self.rt = rt", HUSK, 2)
        for group in plan.groups:
            em.emit(f"self.g_{sanitize(group)} = None", SEM, 2)
        em.emit("", NOTE)

        # The driver entry: read the root, visit, collect exports, write.
        em.emit("def run(self):", HUSK, 1)
        em.emit("rt = self.rt", HUSK, 2)
        em.emit(f"n0 = rt.get_node({self.ag.start!r})", HUSK, 2)
        em.emit(f"self.visit_{sanitize(self.ag.start)}(n0)", HUSK, 2)
        for attr_name, group in plan.root_exports:
            em.emit(
                f"n0.attrs[{attr_name!r}] = self.g_{sanitize(group)}", SEM, 2
            )
        if self.recording:
            em.emit(
                f"rt.rec.put(0, {self.ag.start!r}, rt.out_index())", PROV, 2
            )
        em.emit(f"rt.put_node(n0, {plan.root_fields!r})", HUSK, 2)
        em.emit("return n0", HUSK, 2)
        em.emit("", NOTE)

        # Dispatchers: one per nonterminal.
        for sym in self.ag.nonterminals:
            em.emit(f"def visit_{sanitize(sym.name)}(self, node):", HUSK, 1)
            em.emit("p = node.production", HUSK, 2)
            first = True
            for prod in self.ag.productions_of(sym.name):
                guard = "if" if first else "elif"
                em.emit(f"{guard} p == {prod.index}:", HUSK, 2)
                em.emit(f"self.p{prod.index}_{sanitize(prod.tag)}(node)", HUSK, 3)
                first = False
            em.emit("else:", HUSK, 2)
            em.emit(
                "raise ValueError("
                f"'APT out of phase at %r: production %r' % ({sym.name!r}, p))",
                HUSK,
                3,
            )
            em.emit("", NOTE)

        for prod in self.ag.productions:
            self._emit_procedure(em, plan.plans[prod.index])

        return CodeArtifact(
            pass_k=plan.pass_k,
            text=em.text(),
            husk_bytes=em.bytes_of(HUSK),
            sem_bytes=em.bytes_of(SEM),
            n_subsumed=plan.n_subsumed,
        )

    def generate_all(self, pass_plans: List[PassPlan]) -> List[CodeArtifact]:
        return [self.generate_pass(p) for p in pass_plans]


class GeneratedEvaluator:
    """Compiled generated evaluator: an executor for the driver."""

    def __init__(
        self,
        ag: AttributeGrammar,
        pass_plans: List[PassPlan],
        recording: bool = False,
        memo: bool = False,
    ):
        self.ag = ag
        self.pass_plans = pass_plans
        gen = PythonCodeGenerator(ag, recording=recording, memo=memo)
        self.artifacts = gen.generate_all(pass_plans)
        self._compile_artifacts()

    @classmethod
    def from_artifacts(
        cls,
        ag: AttributeGrammar,
        pass_plans: List[PassPlan],
        artifacts: List[CodeArtifact],
    ) -> "GeneratedEvaluator":
        """Rehydrate from already-generated source text (the warm-cache
        path): no :class:`PythonCodeGenerator` runs — construction goes
        straight to ``exec``-compiling the cached text."""
        self = cls.__new__(cls)
        self.ag = ag
        self.pass_plans = pass_plans
        self.artifacts = artifacts
        self._compile_artifacts()
        return self

    @classmethod
    def from_pass_texts(
        cls,
        ag: AttributeGrammar,
        pass_plans: List[PassPlan],
        pass_texts: List[Tuple[int, str, int, int, int]],
    ) -> "GeneratedEvaluator":
        """Rehydrate from bare pass source text plus size accounting
        (``(pass_k, text, husk_bytes, sem_bytes, n_subsumed)`` tuples —
        the shared-memory artifact plane's wire shape): reconstructs
        the :class:`CodeArtifact` records and ``exec``-compiles the
        shared bytes directly, with no code generation and no disk."""
        artifacts = [
            CodeArtifact(
                pass_k=pass_k,
                text=text,
                husk_bytes=husk_bytes,
                sem_bytes=sem_bytes,
                n_subsumed=n_subsumed,
            )
            for pass_k, text, husk_bytes, sem_bytes, n_subsumed in pass_texts
        ]
        return cls.from_artifacts(ag, pass_plans, artifacts)

    def _compile_artifacts(self) -> None:
        self._classes: Dict[int, type] = {}
        for artifact in self.artifacts:
            namespace: Dict[str, object] = {}
            code = compile(
                artifact.text, f"<generated pass {artifact.pass_k}>", "exec"
            )
            exec(code, namespace)
            self._classes[artifact.pass_k] = namespace[
                f"Pass{artifact.pass_k}Evaluator"
            ]

    def executor(self, plan: PassPlan, runtime: EvaluatorRuntime):
        """The :class:`AlternatingPassDriver`-compatible pass executor."""
        cls = self._classes[plan.pass_k]
        return cls(runtime).run()

    def source_of_pass(self, pass_k: int) -> str:
        for artifact in self.artifacts:
            if artifact.pass_k == pass_k:
                return artifact.text
        raise KeyError(pass_k)
