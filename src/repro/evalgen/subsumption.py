"""Static subsumption — §III's "really important optimization".

Selected attributes are allocated to *global variables* shared across
production-procedures; a copy-rule whose source and target live in the
same global then "generates no code at all" — it is **subsumed**.
LINGUIST-86 groups all static attributes of the same *name* into one
global ("it is very effective to allocate to the same global variable
all inherited attributes that have the same name"); the legality
restriction — two different attributes of the same symbol may not share
a global — is automatically satisfied because a symbol cannot carry two
same-named attributes.

This module implements the paper's selection algorithm: start with
every attribute statically allocated; repeatedly de-allocate any
attribute whose save/restore overhead exceeds the copy-code it saves
("this check is based on what percentage of the semantic functions that
define this attribute are subsumable copy-rules"); removing one
attribute can make others unprofitable, "hence all remaining static
attributes must be reexamined until the process stabilizes.  This is an
n-cubed algorithm and it does not always find an optimal set" — neither
does ours, by design.

The final subsumed/not-subsumed decision for each individual copy-rule
site is made later by :mod:`repro.evalgen.plan`, which tracks what each
global actually holds along the procedure body; this module's estimate
only chooses *which* attributes are static.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ag.copyrules import Binding, production_bindings
from repro.ag.model import (
    AttrKind,
    AttributeGrammar,
    LHS_POSITION,
    LIMB_POSITION,
)
from repro.passes.partition import PassAssignment
from repro.passes.schedule import AttrId


@dataclass
class SubsumptionConfig:
    """Tuning knobs for the cost model.

    ``grouping`` selects the allocation policy: ``"name"`` (the paper's
    choice — one global per attribute name) or ``"per-attribute"`` (one
    global per (symbol, name) — the basic scheme of §III's opening,
    where only copies between instances of the *same* attribute
    subsume).  ABL-2 compares the two.
    """

    enabled: bool = True
    grouping: str = "name"
    #: Code units for one explicit copy assignment.
    copy_cost: int = 1
    #: Code units for the save/restore traffic a non-copy definition of a
    #: static inherited attribute causes.  Our plan brackets globals
    #: per-procedure (one save/restore pair amortized over every
    #: definition in the production), so the marginal cost of one
    #: non-copy definition is about one store — hence the default 1,
    #: which keeps context chains with a single initializer static, the
    #: situation §III highlights ("context information is not often
    #: updated").
    save_restore_cost: int = 1
    #: Code units for exporting a non-copy static synthesized definition.
    export_cost: int = 1


@dataclass
class StaticAllocation:
    """The chosen static attribute set and its grouping."""

    config: SubsumptionConfig
    static: Set[AttrId] = field(default_factory=set)

    def is_static(self, symbol: str, attr_name: str) -> bool:
        return (symbol, attr_name) in self.static

    def group_of(self, symbol: str, attr_name: str) -> Optional[str]:
        """The global-variable name holding this attribute, if static."""
        if (symbol, attr_name) not in self.static:
            return None
        if self.config.grouping == "name":
            return attr_name
        return f"{symbol}${attr_name}"

    def groups(self) -> List[str]:
        out = set()
        for symbol, attr_name in self.static:
            out.add(self.group_of(symbol, attr_name))
        return sorted(out)

    def __len__(self) -> int:
        return len(self.static)


def _attr_symbol_of_ref(prod, position: int) -> str:
    if position == LHS_POSITION:
        return prod.lhs
    if position == LIMB_POSITION:
        return prod.limb
    return prod.rhs[position - 1]


def choose_static_attributes(
    ag: AttributeGrammar,
    assignment: PassAssignment,
    config: Optional[SubsumptionConfig] = None,
) -> StaticAllocation:
    """Run the iterative selection algorithm."""
    config = config or SubsumptionConfig()
    allocation = StaticAllocation(config)
    if not config.enabled:
        return allocation

    # Candidates: inherited and synthesized attributes (intrinsics are
    # parser-set; limb locals are production-private).
    candidates: Set[AttrId] = set()
    kind_of: Dict[AttrId, AttrKind] = {}
    for sym in ag.symbols.values():
        for attr in sym.attributes.values():
            if attr.kind in (AttrKind.INHERITED, AttrKind.SYNTHESIZED):
                candidates.add((sym.name, attr.name))
                kind_of[(sym.name, attr.name)] = attr.kind

    # Defining bindings per attribute, with the (source AttrId, same-pass)
    # info needed to judge subsumability.
    defs: Dict[AttrId, List[Tuple[Optional[AttrId], bool]]] = {a: [] for a in candidates}
    for prod in ag.productions:
        for b in production_bindings(prod):
            target_id = (b.target.symbol, b.target.attr_name)
            if target_id not in defs:
                continue
            src = b.copy_source()
            if src is None or src.position == LIMB_POSITION:
                defs[target_id].append((None, False))
                continue
            src_symbol = _attr_symbol_of_ref(prod, src.position)
            src_id = (src_symbol, src.attr_name)
            same_pass = assignment.attr_pass.get(src_id, -1) == assignment.attr_pass.get(
                target_id, -2
            )
            defs[target_id].append((src_id, same_pass))

    allocation.static = set(candidates)

    def subsumable(target: AttrId, src: Optional[AttrId], same_pass: bool) -> bool:
        if src is None or not same_pass:
            return False
        if src not in allocation.static:
            return False
        return allocation.group_of(*src) == allocation.group_of(*target)

    changed = True
    while changed:
        changed = False
        for a in sorted(allocation.static):
            subsumed = 0
            other = 0
            for src, same_pass in defs[a]:
                if subsumable(a, src, same_pass):
                    subsumed += 1
                else:
                    other += 1
            if kind_of[a] is AttrKind.INHERITED:
                static_extra = other * config.save_restore_cost
            else:
                static_extra = other * config.export_cost
            normal_extra = subsumed * config.copy_cost
            if static_extra > normal_extra:
                allocation.static.discard(a)
                changed = True
    return allocation


def refine_allocation(
    ag: AttributeGrammar,
    assignment: PassAssignment,
    allocation: StaticAllocation,
    deadness,
    max_rounds: int = 12,
) -> StaticAllocation:
    """Re-examine the allocation against the *actually generated* plans.

    Two moves, iterated to stability: **demote** any group whose
    save/set/restore/snapshot/marshalling lines meet or exceed the copy
    lines it eliminates, and **promote** any whole name-group the local
    greedy pass rejected but that pays off globally (a context chain
    whose single initializer made each attribute look unprofitable in
    isolation — the situation the paper's Conclusions attribute to its
    own algorithm's non-optimality).
    """
    from repro.evalgen.plan import build_pass_plans

    config = allocation.config
    if not config.enabled:
        return allocation

    # All candidate attributes, grouped the way the allocation groups.
    candidates: Dict[str, Set[AttrId]] = {}
    probe = StaticAllocation(config)
    for sym in ag.symbols.values():
        for attr in sym.attributes.values():
            if attr.kind in (AttrKind.INHERITED, AttrKind.SYNTHESIZED):
                probe.static = {(sym.name, attr.name)}
                group = probe.group_of(sym.name, attr.name)
                candidates.setdefault(group, set()).add((sym.name, attr.name))

    # Promotion is only worth *measuring* for groups with at least two
    # same-pass same-group copy-rules — each plan build is expensive and
    # a group with fewer can never pay for its save/restore traffic.
    copy_counts: Dict[str, int] = {g: 0 for g in candidates}
    for prod in ag.productions:
        for b in production_bindings(prod):
            src = b.copy_source()
            if src is None or src.position == LIMB_POSITION:
                continue
            target_id = (b.target.symbol, b.target.attr_name)
            probe.static = {target_id}
            tgroup = probe.group_of(*target_id)
            src_id = (_attr_symbol_of_ref(prod, src.position), src.attr_name)
            probe.static = {src_id}
            sgroup = probe.group_of(*src_id)
            if (
                tgroup == sgroup
                and tgroup in copy_counts
                and assignment.attr_pass.get(src_id)
                == assignment.attr_pass.get(target_id)
            ):
                copy_counts[tgroup] += 1
    promotable = {g for g, n in copy_counts.items() if n >= 2}

    def measure(static: Set[AttrId]):
        """(static_lines, normal_lines) per group for this allocation."""
        trial = StaticAllocation(config, static=set(static))
        plans = build_pass_plans(ag, assignment, deadness, trial)
        return _group_costs(ag, plans, trial)

    for _ in range(max_rounds):
        static_lines, normal_lines = measure(allocation.static)
        losers = [g for g in static_lines
                  if static_lines[g] >= normal_lines.get(g, 0)]
        if losers:
            allocation.static = {
                a for a in allocation.static
                if allocation.group_of(*a) not in losers
            }
            continue
        # Try promoting each absent group wholesale.
        current_groups = set(allocation.groups())
        promoted = False
        for group, members in sorted(candidates.items()):
            if group in current_groups or group not in promotable:
                continue
            trial_static = set(allocation.static) | members
            s_lines, n_lines = measure(trial_static)
            if s_lines.get(group, 0) < n_lines.get(group, 0):
                allocation.static = trial_static
                promoted = True
                break  # re-measure from scratch
        if not promoted:
            break
    return allocation


def _group_costs(ag: AttributeGrammar, plans, allocation: StaticAllocation):
    """Weighted generated-line counts per static group: what the group
    costs as allocated vs what the same bindings would cost as plain
    node-field assignments."""
    from repro.evalgen.plan import ActionKind

    static_lines: Dict[str, int] = {g: 0 for g in allocation.groups()}
    normal_lines: Dict[str, int] = {g: 0 for g in allocation.groups()}
    for pass_plan in plans:
        for eplan in pass_plan.plans.values():
            prod = ag.productions[eplan.production]

            def sym_at(pos: int) -> str:
                if pos == LHS_POSITION:
                    return prod.lhs
                if pos == LIMB_POSITION:
                    return prod.limb
                return prod.rhs[pos - 1]

            for action in eplan.actions:
                kind = action.kind
                if kind in (ActionKind.SNAPSHOT, ActionKind.SETGLOBAL,
                            ActionKind.ENTRY_SAVE, ActionKind.EXIT_RESTORE):
                    if action.group in static_lines:
                        static_lines[action.group] += 1
                elif kind in (ActionKind.COMPUTE, ActionKind.SUBSUME):
                    t = action.binding.target
                    g = allocation.group_of(t.symbol, t.attr_name)
                    if g in static_lines:
                        normal_lines[g] += 1  # one code line either way
                        if kind is ActionKind.COMPUTE:
                            static_lines[g] += 1
                elif kind is ActionKind.PUT:
                    for attr_name, source in action.fields:
                        if source[0] != "field":
                            g = allocation.group_of(sym_at(action.position), attr_name)
                            if g in static_lines:
                                static_lines[g] += 1
        for _attr, g in pass_plan.root_exports:
            if g in static_lines:
                static_lines[g] += 1
    return static_lines, normal_lines


def exhaustive_allocation(
    ag: AttributeGrammar,
    assignment: PassAssignment,
    deadness,
    config: Optional[SubsumptionConfig] = None,
    max_candidates: int = 14,
):
    """Exhaustive search for the optimal static set (Conclusions, §V:
    "whether a more complete and global analysis of the attribute
    grammar can yield markedly better static subsumption results").

    Tries *every* subset of the candidate attributes and measures the
    actual generated semantic-code bytes; only feasible for small
    grammars (the candidate count is capped).  Returns
    ``(best_allocation, best_sem_bytes, evaluated_subsets)``.
    """
    from itertools import combinations

    from repro.evalgen.codegen_pascal import PascalCodeGenerator
    from repro.evalgen.plan import build_pass_plans

    config = config or SubsumptionConfig()
    candidates: List[AttrId] = []
    for sym in ag.symbols.values():
        for attr in sym.attributes.values():
            if attr.kind in (AttrKind.INHERITED, AttrKind.SYNTHESIZED):
                candidates.append((sym.name, attr.name))
    candidates.sort()
    if len(candidates) > max_candidates:
        raise ValueError(
            f"exhaustive search over {len(candidates)} attributes "
            f"(> {max_candidates}) is infeasible"
        )

    def sem_bytes_of(static: Set[AttrId]) -> int:
        allocation = StaticAllocation(config, static=set(static))
        plans = build_pass_plans(ag, assignment, deadness, allocation)
        artifacts = PascalCodeGenerator(ag).generate_all(plans)
        return sum(a.sem_bytes for a in artifacts)

    best_static: Set[AttrId] = set()
    best_bytes = sem_bytes_of(set())
    evaluated = 1
    for r in range(1, len(candidates) + 1):
        for subset in combinations(candidates, r):
            evaluated += 1
            size = sem_bytes_of(set(subset))
            if size < best_bytes:
                best_bytes = size
                best_static = set(subset)
    best = StaticAllocation(config, static=best_static)
    return best, best_bytes, evaluated


def count_subsumable_sites(
    ag: AttributeGrammar,
    assignment: PassAssignment,
    allocation: StaticAllocation,
) -> int:
    """Estimated subsumed copy-rule count under ``allocation`` (the plan
    reports the exact count; this estimate serves the cost-model tests)."""
    total = 0
    for prod in ag.productions:
        for b in production_bindings(prod):
            target_id = (b.target.symbol, b.target.attr_name)
            src = b.copy_source()
            if src is None or src.position == LIMB_POSITION:
                continue
            src_id = (_attr_symbol_of_ref(prod, src.position), src.attr_name)
            if (
                target_id in allocation.static
                and src_id in allocation.static
                and allocation.group_of(*src_id) == allocation.group_of(*target_id)
                and assignment.attr_pass.get(src_id) == assignment.attr_pass.get(target_id)
            ):
                total += 1
    return total
