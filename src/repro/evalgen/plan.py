"""Lowering schedules into production-procedure plans.

A :class:`PassPlan` holds one :class:`EvaluationPlan` per production:
the concrete action list of the production-procedure body for that
pass, with every attribute reference resolved to a **node field**, a
procedure-local **temporary**, or a static **global** — and with the
save/restore and snapshot traffic static subsumption requires.

The global-variable discipline (a per-procedure variant of the paper's
per-visit bracketing, same asymptotic cost):

* Invariant at procedure entry: for every static group ``g``, if the
  LHS symbol has a pass-*k* inherited attribute in ``g``, the global
  ``G_g`` holds its value (the caller established it).
* Invariant at procedure exit: if the LHS symbol has a pass-*k*
  synthesized attribute in ``g``, ``G_g`` holds its value (the *export*
  — how ``S.DEFS := S1.DEFS`` subsumes in the paper's example); every
  other touched group is restored to its entry value (the paper's
  ``PRE_QZP``/``PRE`` save/restore pair).
* A value living only in a global that is still needed after the global
  gets overwritten is snapshotted into a stack temporary first (the
  paper's ``POST2_ZQP``).

A *subsumed* copy-rule emits a :data:`SUBSUME` action — bookkeeping
only, zero generated code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ag.copyrules import Binding
from repro.ag.model import (
    AttrKind,
    AttributeGrammar,
    LHS_POSITION,
    LIMB_POSITION,
    Production,
    SymbolKind,
)
from repro.ag.dependencies import OccKey, binding_argument_keys
from repro.errors import GenerationError
from repro.evalgen.deadness import DeadnessAnalysis
from repro.evalgen.subsumption import StaticAllocation
from repro.passes.partition import PassAssignment
from repro.passes.schedule import Direction, StepKind

#: ("field", position, attr) | ("temp", name) | ("global", group)
ValueSource = Tuple


class ActionKind(enum.Enum):
    GET = "get"
    PUT = "put"
    VISIT = "visit"
    COMPUTE = "compute"
    SUBSUME = "subsume"
    SNAPSHOT = "snapshot"
    SETGLOBAL = "setglobal"
    ENTRY_SAVE = "entry_save"
    EXIT_RESTORE = "exit_restore"


@dataclass
class PlanAction:
    kind: ActionKind
    position: int = 0
    binding: Optional[Binding] = None
    group: str = ""
    temp: str = ""
    source: Optional[ValueSource] = None
    #: COMPUTE: argument occurrence -> where its value lives right now.
    refmap: Dict[OccKey, ValueSource] = field(default_factory=dict)
    #: PUT: (attribute name, value source) pairs to write to the record.
    fields: List[Tuple[str, ValueSource]] = field(default_factory=list)
    comment: str = ""


@dataclass
class EvaluationPlan:
    """The body of one production-procedure for one pass."""

    production: int
    pass_k: int
    direction: Direction
    actions: List[PlanAction]
    temps: List[str]
    saved_groups: List[str]  # groups entry-saved / exit-restored
    n_subsumed: int
    n_explicit_copies: int

    def render(self, ag: AttributeGrammar) -> str:
        prod = ag.productions[self.production]
        lines = [f"procedure {prod.tag}PP{self.pass_k} {{ {prod} }}"]
        for a in self.actions:
            lines.append("  " + _render_action(a, prod))
        return "\n".join(lines)


def _render_action(a: PlanAction, prod: Production) -> str:
    def pos_name(position: int) -> str:
        if position == LIMB_POSITION:
            return prod.limb
        return prod.occurrence_at(position).name

    if a.kind is ActionKind.GET:
        return f"GetNode {pos_name(a.position)}"
    if a.kind is ActionKind.PUT:
        keep = ", ".join(name for name, _ in a.fields)
        return f"PutNode {pos_name(a.position)} [{keep}]"
    if a.kind is ActionKind.VISIT:
        return f"visit {pos_name(a.position)}"
    if a.kind is ActionKind.COMPUTE:
        dest = f" -> {a.temp}" if a.temp else ""
        return f"eval {a.binding}{dest}"
    if a.kind is ActionKind.SUBSUME:
        return f"{{ {a.binding} }}  subsumed"
    if a.kind is ActionKind.SNAPSHOT:
        return f"{a.temp} := G_{a.group}  {{ snapshot {a.comment} }}"
    if a.kind is ActionKind.SETGLOBAL:
        return f"G_{a.group} := {a.source}  {a.comment}"
    if a.kind is ActionKind.ENTRY_SAVE:
        return f"SV_{a.group} := G_{a.group}"
    if a.kind is ActionKind.EXIT_RESTORE:
        return f"G_{a.group} := SV_{a.group}"
    return str(a.kind)


@dataclass
class PassPlan:
    """All production plans for one pass, plus driver metadata."""

    pass_k: int
    direction: Direction
    plans: Dict[int, EvaluationPlan]
    #: Global variables live in this pass.
    groups: List[str]
    #: Root synthesized statics of this pass: (attr name, group).
    root_exports: List[Tuple[str, str]]
    #: Record fields the root node keeps after this pass.
    root_fields: List[str]

    @property
    def n_subsumed(self) -> int:
        return sum(p.n_subsumed for p in self.plans.values())

    @property
    def n_explicit_copies(self) -> int:
        return sum(p.n_explicit_copies for p in self.plans.values())


def sanitize(name: str) -> str:
    return name.replace("$", "_")


def temp_name(key: OccKey) -> str:
    pos, attr = key
    tag = "L" if pos == LIMB_POSITION else str(pos)
    return f"t{tag}_{sanitize(attr)}"


class _PlanBuilder:
    def __init__(
        self,
        ag: AttributeGrammar,
        prod: Production,
        pass_k: int,
        assignment: PassAssignment,
        deadness: DeadnessAnalysis,
        allocation: StaticAllocation,
    ):
        self.ag = ag
        self.prod = prod
        self.pass_k = pass_k
        self.assignment = assignment
        self.deadness = deadness
        self.allocation = allocation
        self.steps = assignment.schedule(prod, pass_k).steps
        self.holds: Dict[str, Set[OccKey]] = {}
        self.temps: Dict[OccKey, str] = {}
        self.touched: Set[str] = set()
        self.actions: List[PlanAction] = []
        self.n_subsumed = 0
        self.n_explicit_copies = 0
        self._needs = self._collect_needs()

    # -- context helpers -------------------------------------------------

    def symbol_at(self, position: int) -> str:
        if position == LHS_POSITION:
            return self.prod.lhs
        if position == LIMB_POSITION:
            return self.prod.limb
        return self.prod.rhs[position - 1]

    def pass_of(self, position: int, attr: str) -> int:
        return self.assignment.attr_pass[(self.symbol_at(position), attr)]

    def group_of(self, position: int, attr: str) -> Optional[str]:
        return self.allocation.group_of(self.symbol_at(position), attr)

    def is_live_static(self, key: OccKey) -> bool:
        pos, attr = key
        return self.group_of(pos, attr) is not None and self.pass_of(pos, attr) == self.pass_k

    # -- needs analysis ---------------------------------------------------

    def _collect_needs(self) -> Dict[OccKey, List[int]]:
        """For every static pass-k occurrence: the step indexes where its
        value is consumed (args, record writes, final export)."""
        needs: Dict[OccKey, List[int]] = {}

        def note(key: OccKey, t: int) -> None:
            if self.is_live_static(key):
                needs.setdefault(key, []).append(t)

        for t, step in enumerate(self.steps):
            if step.kind is StepKind.EVAL:
                for key in binding_argument_keys(step.binding):
                    note(key, t)
            elif step.kind is StepKind.WRITE:
                sym = self.symbol_at(step.position)
                for attr in self.deadness.fields_after_pass(sym, self.pass_k):
                    note((step.position, attr), t)
        t_end = len(self.steps)
        lhs_sym = self.ag.symbol(self.prod.lhs)
        for attr in lhs_sym.synthesized:
            note((LHS_POSITION, attr.name), t_end)
        return needs

    def _needed_after(self, key: OccKey, t: int) -> bool:
        return any(u > t for u in self._needs.get(key, ()))

    # -- value resolution ---------------------------------------------------

    def resolve(self, key: OccKey) -> ValueSource:
        pos, attr = key
        if key in self.temps:
            return ("temp", self.temps[key])
        group = self.group_of(pos, attr)
        if group is not None and self.pass_of(pos, attr) == self.pass_k:
            if key in self.holds.get(group, ()):
                return ("global", group)
            raise GenerationError(
                f"internal: static value {self.symbol_at(pos)}.{attr} at "
                f"position {pos} is neither in a temp nor in global {group} "
                f"(production {self.prod.index}, pass {self.pass_k})"
            )
        return ("field", pos, attr)

    def _snapshot_before_evict(self, group: str, keep: Optional[OccKey], t: int) -> None:
        for key in sorted(self.holds.get(group, set())):
            if key == keep or key in self.temps:
                continue
            if self._needed_after(key, t):
                name = temp_name(key)
                self.temps[key] = name
                self.actions.append(
                    PlanAction(
                        ActionKind.SNAPSHOT,
                        group=group,
                        temp=name,
                        comment=f"{self.symbol_at(key[0])}.{key[1]}@{key[0]}",
                    )
                )

    # -- the walk ------------------------------------------------------------

    def build(self) -> EvaluationPlan:
        # Entry invariant: caller left LHS pass-k inherited statics in
        # their globals.
        lhs_sym = self.ag.symbol(self.prod.lhs)
        for attr in lhs_sym.inherited:
            key = (LHS_POSITION, attr.name)
            group = self.group_of(*key)
            if group is not None and self.pass_of(*key) == self.pass_k:
                self.holds.setdefault(group, set()).add(key)

        for t, step in enumerate(self.steps):
            if step.kind is StepKind.READ:
                self.actions.append(PlanAction(ActionKind.GET, position=step.position))
            elif step.kind is StepKind.EVAL:
                self._do_eval(step.binding, t)
            elif step.kind is StepKind.VISIT:
                self._do_visit(step.position, t)
            elif step.kind is StepKind.WRITE:
                self._do_write(step.position, t)
        self._do_exports(len(self.steps))
        saved = self._wrap_saves()
        return EvaluationPlan(
            production=self.prod.index,
            pass_k=self.pass_k,
            direction=self.assignment.direction(self.pass_k),
            actions=self.actions,
            temps=sorted(set(self.temps.values())),
            saved_groups=saved,
            n_subsumed=self.n_subsumed,
            n_explicit_copies=self.n_explicit_copies,
        )

    def _do_eval(self, binding: Binding, t: int) -> None:
        tkey = (binding.target.position, binding.target.attr_name)
        tgroup = self.group_of(*tkey) if self.is_live_static(tkey) else None
        src = binding.copy_source()
        if tgroup is not None and src is not None and src.position != LIMB_POSITION:
            skey = (src.position, src.attr_name)
            sgroup = self.group_of(*skey)
            if (
                sgroup == tgroup
                and self.pass_of(*skey) == self.pass_k
                and skey in self.holds.get(tgroup, set())
            ):
                # Subsumed: the proper value is already in the global.
                # The group rides along so provenance recording can read
                # the subsumed value; it is excluded from PassPlan.groups
                # (SUBSUME never allocates the global it reads).
                self.actions.append(
                    PlanAction(ActionKind.SUBSUME, binding=binding, group=tgroup)
                )
                self.holds[tgroup].add(tkey)
                self.n_subsumed += 1
                return
        refmap = {k: self.resolve(k) for k in binding_argument_keys(binding)}
        if binding.is_copy():
            self.n_explicit_copies += 1
        if tgroup is not None:
            name = temp_name(tkey)
            self.temps[tkey] = name
            self.actions.append(
                PlanAction(ActionKind.COMPUTE, binding=binding, temp=name, refmap=refmap)
            )
        else:
            self.actions.append(
                PlanAction(ActionKind.COMPUTE, binding=binding, refmap=refmap)
            )

    def _do_visit(self, position: int, t: int) -> None:
        child_sym = self.ag.symbol(self.symbol_at(position))
        # Establish the child's entry invariant for its static inherited.
        for attr in child_sym.inherited:
            key = (position, attr.name)
            if not self.is_live_static(key):
                continue
            group = self.group_of(*key)
            if key in self.holds.get(group, set()):
                continue  # a subsumed copy already left the value there
            self._snapshot_before_evict(group, None, t)
            source = self.resolve(key)
            self.actions.append(
                PlanAction(
                    ActionKind.SETGLOBAL,
                    group=group,
                    source=source,
                    comment=f"{{ {child_sym.name}.{attr.name} down }}",
                )
            )
            self.holds[group] = {key}
            self.touched.add(group)
        # The child's visit will clobber the globals it exports into —
        # snapshot anything still needed *before* the call (the paper's
        # ``POST2_ZQP := POST`` pattern, hoisted ahead of the visit).
        export_groups: List[Tuple[str, OccKey]] = []
        for attr in child_sym.synthesized:
            key = (position, attr.name)
            if not self.is_live_static(key):
                continue
            group = self.group_of(*key)
            self._snapshot_before_evict(group, None, t)
            export_groups.append((group, key))
        self.actions.append(PlanAction(ActionKind.VISIT, position=position))
        # The child's exit invariant: its static synthesized are exported.
        for group, key in export_groups:
            self.holds[group] = {key}
            self.touched.add(group)

    def _do_write(self, position: int, t: int) -> None:
        sym = self.symbol_at(position)
        fields: List[Tuple[str, ValueSource]] = []
        for attr in self.deadness.fields_after_pass(sym, self.pass_k):
            fields.append((attr, self.resolve((position, attr))))
        self.actions.append(
            PlanAction(ActionKind.PUT, position=position, fields=fields)
        )

    def _do_exports(self, t_end: int) -> None:
        lhs_sym = self.ag.symbol(self.prod.lhs)
        for attr in lhs_sym.synthesized:
            key = (LHS_POSITION, attr.name)
            if not self.is_live_static(key):
                continue
            group = self.group_of(*key)
            if key in self.holds.get(group, set()):
                continue  # the last child's export already matches (subsumed)
            source = self.resolve(key)
            self.actions.append(
                PlanAction(
                    ActionKind.SETGLOBAL,
                    group=group,
                    source=source,
                    comment=f"{{ export {self.prod.lhs}.{attr.name} }}",
                )
            )
            self.holds[group] = {key}
            self.touched.add(group)

    def _wrap_saves(self) -> List[str]:
        """Entry-save/exit-restore every touched group the LHS does not
        itself export in this pass."""
        lhs_sym = self.ag.symbol(self.prod.lhs)
        exported: Set[str] = set()
        for attr in lhs_sym.synthesized:
            key = (LHS_POSITION, attr.name)
            if self.is_live_static(key):
                exported.add(self.group_of(*key))
        saved = sorted(g for g in self.touched if g not in exported)
        head = [PlanAction(ActionKind.ENTRY_SAVE, group=g) for g in saved]
        tail = [PlanAction(ActionKind.EXIT_RESTORE, group=g) for g in saved]
        self.actions = head + self.actions + tail
        return saved


def build_pass_plans(
    ag: AttributeGrammar,
    assignment: PassAssignment,
    deadness: DeadnessAnalysis,
    allocation: StaticAllocation,
) -> List[PassPlan]:
    """Build every pass's plans (pass numbers 1..n)."""
    out: List[PassPlan] = []
    start_sym = ag.symbol(ag.start)
    for pass_k in range(1, assignment.n_passes + 1):
        plans: Dict[int, EvaluationPlan] = {}
        groups: Set[str] = set()
        for prod in ag.productions:
            builder = _PlanBuilder(ag, prod, pass_k, assignment, deadness, allocation)
            plan = builder.build()
            plans[prod.index] = plan
            for action in plan.actions:
                if action.group and action.kind is not ActionKind.SUBSUME:
                    groups.add(action.group)
        root_exports: List[Tuple[str, str]] = []
        for attr in start_sym.synthesized:
            group = allocation.group_of(ag.start, attr.name)
            if group is not None and assignment.pass_of(ag.start, attr.name) == pass_k:
                root_exports.append((attr.name, group))
                groups.add(group)
        out.append(
            PassPlan(
                pass_k=pass_k,
                direction=assignment.direction(pass_k),
                plans=plans,
                groups=sorted(groups),
                root_exports=root_exports,
                root_fields=deadness.fields_after_pass(ag.start, pass_k),
            )
        )
    return out
