"""Runtime services shared by generated and interpretive evaluators.

One :class:`EvaluatorRuntime` serves one pass: it hands out nodes from
the input spool (``GetNode``), collects them into the output spool
(``PutNode``), resolves uninterpreted functions and constants against
the function library, and charges the memory gauge so the §Intro
48K-budget claim is measurable.  An optional trace records the
get/eval/visit/put event stream (EXP-F2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.apt.node import APTNode
from repro.apt.storage import Spool
from repro.errors import EvaluationError
from repro.util.iotrack import MemoryGauge
from repro.util.lists import STANDARD_FUNCTIONS


class FunctionLibrary:
    """Resolution of uninterpreted function and constant identifiers.

    §IV: "any identifier that is not a grammar symbol, attribute, or
    attribute type is treated as an uninterpreted constant or function.
    All … interpretation … is done by the compiler for the target
    programming language" — here, by this library at run time.
    Unresolved constants evaluate to their own name, so purely
    structural grammars run without any library at all.
    """

    def __init__(self, functions: Optional[Dict[str, Callable[..., Any]]] = None,
                 constants: Optional[Dict[str, Any]] = None,
                 use_standard: bool = True):
        self.functions: Dict[str, Callable[..., Any]] = {}
        if use_standard:
            self.functions.update(STANDARD_FUNCTIONS)
        if functions:
            self.functions.update(functions)
        self.constants: Dict[str, Any] = dict(constants or {})

    def call(self, name: str, *args: Any) -> Any:
        fn = self.functions.get(name)
        if fn is None:
            raise EvaluationError(
                f"no definition for external function {name!r} "
                f"(supply it in the function library)"
            )
        return fn(*args)

    def constant(self, name: str) -> Any:
        return self.constants.get(name, name)


class TraceEvent:
    """One paradigm event, for golden-trace tests and EXP-F2."""

    __slots__ = ("kind", "detail")

    def __init__(self, kind: str, detail: str):
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        return f"{self.kind} {self.detail}"

    def __eq__(self, other):
        if isinstance(other, TraceEvent):
            return (self.kind, self.detail) == (other.kind, other.detail)
        if isinstance(other, tuple):
            return (self.kind, self.detail) == other
        return NotImplemented


class EvaluatorRuntime:
    """Per-pass runtime: node I/O, library access, gauges, tracing."""

    def __init__(
        self,
        reader: Iterator[Any],
        output: Spool,
        library: Optional[FunctionLibrary] = None,
        gauge: Optional[MemoryGauge] = None,
        trace: Optional[List[TraceEvent]] = None,
        tracer=None,
        metrics=None,
        recorder=None,
    ):
        self._reader = reader
        self._output = output
        self.library = library or FunctionLibrary()
        self.gauge = gauge
        self.trace = trace
        #: Structured tracer (repro.obs.Tracer) or None — the fast path.
        self.tracer = tracer
        #: Provenance recorder (repro.obs.ProvenanceRecorder) or None.
        self.rec = recorder
        #: Incremental-memo session (repro.passes.incremental) or None —
        #: attached by the driver for pass 1 of a memoized run only.
        self.memo = None
        # Event counters, resolved once against the metrics registry so
        # the hot path pays one attribute check when telemetry is off.
        if metrics is not None:
            self._c_elided = metrics.counter("evt.copyrule_elided")
            self._c_saves = metrics.counter("evt.subsume_saves")
            self._c_restores = metrics.counter("evt.subsume_restores")
            self._c_dead = metrics.counter("evt.dead_attrs_skipped")
        else:
            self._c_elided = None
            self._c_saves = None
            self._c_restores = None
            self._c_dead = None

    # -- node I/O -----------------------------------------------------------

    def get_node(self, expected_symbol: str) -> APTNode:
        """Read the next node record; it must be an ``expected_symbol``."""
        try:
            record = next(self._reader)
        except StopIteration:
            raise EvaluationError(
                f"APT input exhausted while expecting a {expected_symbol!r} node"
            ) from None
        symbol, production, attrs, is_limb = record
        if symbol != expected_symbol:
            raise EvaluationError(
                f"APT input out of phase: expected {expected_symbol!r}, "
                f"read {symbol!r} — the evaluator and the parser disagree "
                "about the phrase structure"
            )
        node = APTNode(symbol, production, dict(attrs), is_limb)
        if self.memo is not None:
            self.memo.note_get(node)
        if self.gauge is not None:
            # Residency is charged at the record size read from disk; the
            # matching release uses the same figure (values computed into
            # the node during the visit live on the stack as temporaries
            # in the generated code's accounting).
            size = node.byte_size()
            node.__dict__["_resident_bytes"] = size
            self.gauge.acquire(size)
        if self.trace is not None:
            self.trace.append(TraceEvent("get", symbol))
        return node

    def put_node(self, node: APTNode, fields: Optional[List[str]] = None) -> None:
        """Write a node to the output file, keeping only ``fields`` (the
        deadness analysis decides which instances are still alive)."""
        if fields is None:
            attrs = node.attrs
        else:
            attrs = {k: node.attrs[k] for k in fields if k in node.attrs}
            dropped = len(node.attrs) - len(attrs)
            if dropped:
                # Dead-attribute suppression actually discarded instances.
                if self._c_dead is not None:
                    self._c_dead.inc(dropped)
                if self.tracer is not None:
                    self.tracer.instant(
                        "dead.skip", cat="evt", symbol=node.symbol, n=dropped
                    )
        self._output.append((node.symbol, node.production, attrs, node.is_limb))
        if self.gauge is not None:
            self.gauge.release(node.__dict__.get("_resident_bytes", 0))
        if self.trace is not None:
            self.trace.append(TraceEvent("put", node.symbol))

    def skip_records(self, n: int) -> None:
        """Consume ``n`` input records without building nodes — the
        memo-hit path's input advance past a spliced subtree."""
        reader = self._reader
        for _ in range(n):
            try:
                next(reader)
            except StopIteration:
                raise EvaluationError(
                    "APT input exhausted while skipping a memoized subtree "
                    "(memo span disagrees with the spool)"
                ) from None

    def splice_record(self, record: Any) -> None:
        """Append an already-evaluated record verbatim to the output
        spool (memo-hit splice; bypasses node construction)."""
        self._output.append(record)

    def splice_blob(self, blob: bytes) -> None:
        """Append an already-*encoded* record verbatim (the raw memo
        splice: the output spool's codec was seeded from the splice
        source's name table, so the bytes need no decode/re-encode)."""
        self._output.append_blob(blob)

    def splice_blobs(self, blobs) -> None:
        """Bulk form of :meth:`splice_blob` — one whole memoized
        subtree's records in a single batched append."""
        self._output.append_blobs(blobs)

    @property
    def output_spool(self) -> Spool:
        """The pass's output spool (the memo session inspects it to
        decide whether the raw splice path applies)."""
        return self._output

    def out_index(self) -> int:
        """Record index the *next* :meth:`put_node` call will occupy in
        the output spool — the spool offset provenance events carry."""
        return self._output.n_records

    def at_end(self) -> bool:
        """True when the input spool is exhausted."""
        sentinel = object()
        nxt = next(self._reader, sentinel)
        if nxt is sentinel:
            return True
        # Put it back by chaining.
        import itertools

        self._reader = itertools.chain([nxt], self._reader)
        return False

    # -- semantic-function services ------------------------------------------

    def call(self, name: str, *args: Any) -> Any:
        result = self.library.call(name, *args)
        return result

    def constant(self, name: str) -> Any:
        return self.library.constant(name)

    @staticmethod
    def div(a: Any, b: Any) -> Any:
        """The DIV operator: integer division on ints, / otherwise."""
        if isinstance(a, int) and isinstance(b, int):
            return a // b
        return a / b

    def note_eval(self, detail: str) -> None:
        if self.trace is not None:
            self.trace.append(TraceEvent("eval", detail))

    def note_visit(self, detail: str) -> None:
        if self.trace is not None:
            self.trace.append(TraceEvent("visit", detail))

    # -- structured telemetry events ------------------------------------------

    def note_copyrule_elided(self, detail: str) -> None:
        """A copy-rule was subsumed by a global — no code, no traffic."""
        if self._c_elided is not None:
            self._c_elided.inc()
        if self.tracer is not None:
            self.tracer.instant("copyrule.elided", cat="evt", binding=detail)

    def note_subsume_save(self, group: str) -> None:
        """Entry-save of a subsumption global at a reassigning production."""
        if self._c_saves is not None:
            self._c_saves.inc()
        if self.tracer is not None:
            self.tracer.instant("subsume.save", cat="evt", group=group)

    def note_subsume_restore(self, group: str) -> None:
        """Exit-restore of a subsumption global."""
        if self._c_restores is not None:
            self._c_restores.inc()
        if self.tracer is not None:
            self.tracer.instant("subsume.restore", cat="evt", group=group)


class EvaluationResult:
    """Outcome of a full multi-pass evaluation: the root's attributes
    (the translation result lives in the root's synthesized
    attribute-instances, §I) plus bookkeeping."""

    def __init__(self, root_attrs: Dict[str, Any], n_passes: int):
        self.root_attrs = dict(root_attrs)
        self.n_passes = n_passes

    def __getitem__(self, attr: str) -> Any:
        try:
            return self.root_attrs[attr]
        except KeyError:
            raise EvaluationError(
                f"root has no evaluated attribute {attr!r}; "
                f"available: {sorted(self.root_attrs)}"
            ) from None

    def __contains__(self, attr: str) -> bool:
        return attr in self.root_attrs

    def __repr__(self) -> str:
        return f"EvaluationResult({self.root_attrs!r}, passes={self.n_passes})"


def render_root_attrs(root_attrs: Dict[str, Any]) -> List[str]:
    """Render root attributes exactly as ``repro run`` prints them.

    This is THE canonical rendering: ``repro batch`` output files, the
    serve daemon's response bodies, and the differential harness all
    go through it, so "byte-identical across execution paths" is a
    property of one function.  Non-str iterables (``CatSeq`` chains,
    tuples) materialize as lists first.
    """
    lines = []
    for attr, value in sorted(root_attrs.items()):
        rendered = list(value) if hasattr(value, "__iter__") and not isinstance(
            value, str
        ) else value
        lines.append(f"{attr} = {rendered}")
    return lines
