"""The Schulz-style interpretive evaluator.

§II: "Schulz describes an interpretive approach … LINGUIST-86 generates
in-line code".  This module is the interpretive side of that contrast
(ABL-3): it executes :class:`~repro.evalgen.plan.PassPlan` actions
directly against the runtime, walking the same file-resident APT with
the same paradigm, but paying dispatch on every action instead of
running generated code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.ag.model import AttributeGrammar, LHS_POSITION, LIMB_POSITION
from repro.apt.node import APTNode
from repro.errors import EvaluationError
from repro.evalgen.exprinterp import eval_expr
from repro.evalgen.plan import ActionKind, EvaluationPlan, PassPlan, PlanAction
from repro.evalgen.runtime import EvaluatorRuntime
from repro.obs.provenance import input_keys
from repro.passes.incremental import MEMO_HIT


class InterpretiveEvaluator:
    """Executes one pass plan over one runtime (one pass of the APT)."""

    def __init__(self, ag: AttributeGrammar):
        self.ag = ag

    def run_pass(self, plan: PassPlan, runtime: EvaluatorRuntime) -> APTNode:
        """Run the whole pass: read the root, visit, write the root.
        Returns the root node (with this pass's exports filled in)."""
        globals_: Dict[str, Any] = {g: None for g in plan.groups}
        root = runtime.get_node(self.ag.start)
        self._visit(root, plan, runtime, globals_)
        for attr_name, group in plan.root_exports:
            root.attrs[attr_name] = globals_[group]
        if runtime.rec is not None:
            runtime.rec.put(LHS_POSITION, root.symbol, runtime.out_index())
        runtime.put_node(root, fields=plan.root_fields)
        return root

    # ------------------------------------------------------------------

    def _visit(
        self,
        node: APTNode,
        plan: PassPlan,
        runtime: EvaluatorRuntime,
        globals_: Dict[str, Any],
    ) -> None:
        if node.production is None:
            raise EvaluationError(
                f"cannot visit terminal node {node.symbol!r}; the APT is out of phase"
            )
        prod = self.ag.productions[node.production]
        eplan = plan.plans[prod.index]
        runtime.note_visit(prod.tag)
        tracer = runtime.tracer
        if tracer is None:
            return self._run_actions(node, prod, eplan, plan, runtime, globals_)
        with tracer.span(
            prod.tag or prod.lhs,
            cat="visit",
            symbol=node.symbol,
            production=prod.index,
        ):
            return self._run_actions(node, prod, eplan, plan, runtime, globals_)

    def _run_actions(
        self,
        node: APTNode,
        prod,
        eplan: EvaluationPlan,
        plan: PassPlan,
        runtime: EvaluatorRuntime,
        globals_: Dict[str, Any],
    ) -> None:
        tracer = runtime.tracer
        rec = runtime.rec
        nodes: Dict[int, APTNode] = {LHS_POSITION: node}
        temps: Dict[str, Any] = {}
        saves: Dict[str, Any] = {}

        def symbol_at(position: int) -> str:
            if position == LIMB_POSITION:
                return prod.limb
            if position == LHS_POSITION:
                return prod.lhs
            return prod.rhs[position - 1]

        def source_value(source) -> Any:
            kind = source[0]
            if kind == "field":
                _, pos, attr = source
                try:
                    return nodes[pos].attrs[attr]
                except KeyError:
                    raise EvaluationError(
                        f"attribute {symbol_at(pos)}.{attr} not present on node "
                        f"(production {prod.index}, pass {plan.pass_k})"
                    ) from None
            if kind == "temp":
                return temps[source[1]]
            if kind == "global":
                return globals_[source[1]]
            raise EvaluationError(f"unknown value source {source!r}")

        for action in eplan.actions:
            kind = action.kind
            if kind is ActionKind.GET:
                nodes[action.position] = runtime.get_node(symbol_at(action.position))
            elif kind is ActionKind.PUT:
                target = nodes[action.position]
                names: List[str] = []
                for attr_name, source in action.fields:
                    names.append(attr_name)
                    if source[0] != "field":
                        target.attrs[attr_name] = source_value(source)
                if rec is not None:
                    rec.put(action.position, target.symbol, runtime.out_index())
                runtime.put_node(target, fields=names)
            elif kind is ActionKind.VISIT:
                child = nodes[action.position]
                memo = runtime.memo
                if memo is not None:
                    token = memo.enter_interp(child, globals_)
                    if token is MEMO_HIT:
                        continue  # subtree spliced from the memo
                else:
                    token = None
                if rec is None:
                    self._visit(child, plan, runtime, globals_)
                else:
                    rec.enter_child(action.position)
                    self._visit(child, plan, runtime, globals_)
                    rec.exit_child()
                if token is not None:
                    memo.leave_interp(token, child, globals_)
            elif kind is ActionKind.COMPUTE:
                binding = action.binding

                def lookup(position: int, attr: str) -> Any:
                    return source_value(action.refmap[(position, attr)])

                if tracer is None:
                    value = eval_expr(
                        binding.expr, lookup, runtime.call, runtime.constant
                    )
                else:
                    with tracer.span(str(binding.target), cat="semfn"):
                        value = eval_expr(
                            binding.expr, lookup, runtime.call, runtime.constant
                        )
                runtime.note_eval(str(binding.target))
                if action.temp:
                    temps[action.temp] = value
                else:
                    nodes[binding.target.position].attrs[
                        binding.target.attr_name
                    ] = value
                if rec is not None:
                    rec.define(
                        prod.index,
                        binding.target.position,
                        binding.target.attr_name,
                        value,
                        [
                            (p, a, source_value(action.refmap[(p, a)]))
                            for p, a in input_keys(binding)
                        ],
                        "compute",
                        str(binding),
                        runtime.out_index(),
                    )
            elif kind is ActionKind.SUBSUME:
                # No code: the value is already in its global.
                runtime.note_copyrule_elided(str(action.binding))
                if rec is not None:
                    binding = action.binding
                    src = binding.copy_source()
                    value = globals_[action.group]
                    rec.define(
                        prod.index,
                        binding.target.position,
                        binding.target.attr_name,
                        value,
                        [(src.position, src.attr_name, value)],
                        "subsume",
                        str(binding),
                        runtime.out_index(),
                    )
            elif kind is ActionKind.SNAPSHOT:
                temps[action.temp] = globals_[action.group]
            elif kind is ActionKind.SETGLOBAL:
                globals_[action.group] = source_value(action.source)
            elif kind is ActionKind.ENTRY_SAVE:
                saves[action.group] = globals_[action.group]
                runtime.note_subsume_save(action.group)
            elif kind is ActionKind.EXIT_RESTORE:
                globals_[action.group] = saves[action.group]
                runtime.note_subsume_restore(action.group)
            else:  # pragma: no cover
                raise EvaluationError(f"unknown plan action {kind}")
