"""Generation of Pascal evaluator source (the paper's target language).

LINGUIST-86 "generates attribute evaluators written in high-level
programming languages, including Pascal"; its §V size table measures
8086 object bytes of those modules.  We render the same plans as
Pascal source modules — one per pass, shaped exactly like the paper's
``FUNCTIONLISTLIMBPP2`` example — and use source bytes (husk vs
semantic, same categories as the Python generator) as the size proxy
for EXP-T2/T5.  The text is not compiled; it exists to be measured and
read.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ag.expr import AttrRef, BinOp, Call, Const, Expr, If, Not
from repro.ag.model import (
    AttributeGrammar,
    LHS_POSITION,
    LIMB_POSITION,
    Production,
    SymbolKind,
)
from repro.errors import GenerationError
from repro.evalgen.codegen_py import CodeArtifact, DECL, HUSK, NOTE, SEM, _Emitter
from repro.evalgen.plan import ActionKind, EvaluationPlan, PassPlan, sanitize


def _ident(name: str) -> str:
    return sanitize(name).upper()


def _var(prod: Production, position: int) -> str:
    if position == LIMB_POSITION:
        return _ident(prod.limb)
    if position == LHS_POSITION:
        return _ident(prod.occurrence_at(LHS_POSITION).name)
    return _ident(prod.occurrence_at(position).name)


class PascalCodeGenerator:
    """Renders pass plans as Pascal source modules."""

    def __init__(self, ag: AttributeGrammar):
        self.ag = ag

    # -- expressions -------------------------------------------------------

    def compile_expr(
        self, expr: Expr, refmap: Dict[Tuple[int, str], tuple], prod: Production
    ) -> str:
        if isinstance(expr, Const):
            if expr.is_symbolic:
                return _ident(str(expr.value))
            if isinstance(expr.value, bool):
                return "TRUE" if expr.value else "FALSE"
            if isinstance(expr.value, str):
                return "'" + expr.value.replace("'", "''") + "'"
            return str(expr.value)
        if isinstance(expr, AttrRef):
            return self._source(refmap[(expr.position, expr.attr_name)], prod)
        if isinstance(expr, Not):
            return f"NOT {self.compile_expr(expr.body, refmap, prod)}"
        if isinstance(expr, BinOp):
            left = self.compile_expr(expr.left, refmap, prod)
            right = self.compile_expr(expr.right, refmap, prod)
            return f"({left} {expr.op} {right})"
        if isinstance(expr, Call):
            args = ", ".join(self.compile_expr(a, refmap, prod) for a in expr.args)
            return f"{_ident(expr.func)}({args})"
        if isinstance(expr, If):
            raise GenerationError(
                "Pascal has no if-expression; compile_expr must not see If "
                "(handled by statement emission)"
            )
        raise GenerationError(f"unknown expression node {expr!r}")

    def _source(self, source: tuple, prod: Production) -> str:
        kind = source[0]
        if kind == "field":
            _, pos, attr = source
            return f"{_var(prod, pos)}.{_ident(attr)}"
        if kind == "temp":
            return _ident(source[1]) + "_QZP"
        if kind == "global":
            return _ident(source[1])
        raise GenerationError(f"unknown value source {source!r}")

    def _emit_assign(
        self,
        em: _Emitter,
        dest: str,
        expr: Expr,
        refmap: Dict[Tuple[int, str], tuple],
        prod: Production,
        indent: int,
    ) -> None:
        """Assignment with If lowered to IF/THEN/ELSE statements."""
        if isinstance(expr, If):
            cond = self.compile_expr(expr.cond, refmap, prod)
            em.emit(f"IF {cond}", SEM, indent)
            em.emit("THEN", SEM, indent)
            self._emit_assign(em, dest, expr.then_branch[0], refmap, prod, indent + 1)
            em.emit("ELSE", SEM, indent)
            if isinstance(expr.else_branch, If):
                self._emit_assign(em, dest, expr.else_branch, refmap, prod, indent + 1)
            else:
                self._emit_assign(
                    em, dest, expr.else_branch[0], refmap, prod, indent + 1
                )
        else:
            em.emit(f"{dest} := {self.compile_expr(expr, refmap, prod)};", SEM, indent)

    # -- procedures ----------------------------------------------------------

    def _emit_procedure(self, em: _Emitter, plan: EvaluationPlan) -> None:
        prod = self.ag.productions[plan.production]
        lhs = _var(prod, LHS_POSITION)
        name = f"{_ident(prod.tag)}PP{plan.pass_k}"
        em.emit(
            f"procedure {name} (VAR {lhs} : {_ident(prod.lhs)}_node_type);", HUSK
        )
        em.emit(f"{{ {prod}  pass {plan.pass_k}, {plan.direction.value} }}", NOTE)
        # VAR section: RHS nodes, limb node, temps, save slots.
        declared = False
        for position in prod.rhs_positions():
            if not declared:
                em.emit("VAR", HUSK, 0)
                declared = True
            em.emit(
                f"{_var(prod, position)} : {_ident(prod.rhs[position - 1])}_node_type;",
                DECL,
                1,
            )
        if prod.limb:
            if not declared:
                em.emit("VAR", HUSK, 0)
                declared = True
            em.emit(f"{_ident(prod.limb)} : {_ident(prod.limb)}_node_type;", DECL, 1)
        for temp in plan.temps:
            if not declared:
                em.emit("VAR", HUSK, 0)
                declared = True
            em.emit(f"{_ident(temp)}_QZP : attr_value;", DECL, 1)
        for group in plan.saved_groups:
            if not declared:
                em.emit("VAR", HUSK, 0)
                declared = True
            em.emit(f"{_ident(group)}_ZQP : attr_value;", DECL, 1)
        em.emit("begin", HUSK)

        for action in plan.actions:
            kind = action.kind
            if kind is ActionKind.GET:
                sym = self._symbol_at(prod, action.position)
                em.emit(
                    f"GetNode{_ident(sym)}({_var(prod, action.position)});", HUSK, 1
                )
            elif kind is ActionKind.PUT:
                var = _var(prod, action.position)
                for attr_name, source in action.fields:
                    if source[0] != "field":
                        em.emit(
                            f"{var}.{_ident(attr_name)} := {self._source(source, prod)};",
                            SEM,
                            1,
                        )
                sym = self._symbol_at(prod, action.position)
                em.emit(f"PutNode{_ident(sym)}({var});", HUSK, 1)
            elif kind is ActionKind.VISIT:
                sym = self._symbol_at(prod, action.position)
                em.emit(
                    f"{_ident(sym)}PP{plan.pass_k}({_var(prod, action.position)});",
                    HUSK,
                    1,
                )
            elif kind is ActionKind.COMPUTE:
                binding = action.binding
                if action.temp:
                    dest = _ident(action.temp) + "_QZP"
                else:
                    target = binding.target
                    dest = f"{_var(prod, target.position)}.{_ident(target.attr_name)}"
                self._emit_assign(em, dest, binding.expr, action.refmap, prod, 1)
            elif kind is ActionKind.SUBSUME:
                em.emit(f"{{ {action.binding} }}", NOTE, 1)
            elif kind is ActionKind.SNAPSHOT:
                em.emit(
                    f"{_ident(action.temp)}_QZP := {_ident(action.group)};", SEM, 1
                )
            elif kind is ActionKind.SETGLOBAL:
                em.emit(
                    f"{_ident(action.group)} := {self._source(action.source, prod)};",
                    SEM,
                    1,
                )
            elif kind is ActionKind.ENTRY_SAVE:
                em.emit(
                    f"{_ident(action.group)}_ZQP := {_ident(action.group)};", SEM, 1
                )
            elif kind is ActionKind.EXIT_RESTORE:
                em.emit(
                    f"{_ident(action.group)} := {_ident(action.group)}_ZQP;", SEM, 1
                )
        em.emit(f"end; {{ {name} }}", HUSK)
        em.emit("", NOTE)

    @staticmethod
    def _symbol_at(prod: Production, position: int) -> str:
        if position == LIMB_POSITION:
            return prod.limb
        if position == LHS_POSITION:
            return prod.lhs
        return prod.rhs[position - 1]

    # -- pass module -----------------------------------------------------------

    def generate_pass(self, plan: PassPlan) -> CodeArtifact:
        em = _Emitter()
        em.emit(
            f"{{ Attribute-evaluation pass {plan.pass_k} ({plan.direction.value}) "
            f"for grammar {self.ag.name}.  Generated. }}",
            NOTE,
        )
        em.emit(f"module PASS{plan.pass_k};", HUSK)
        if plan.groups:
            em.emit("VAR  { statically allocated attributes }", NOTE)
            for group in plan.groups:
                em.emit(f"{_ident(group)} : attr_value;", DECL, 1)
        em.emit("", NOTE)
        # Dispatchers, shaped as per-symbol case statements.
        for sym in self.ag.nonterminals:
            em.emit(
                f"procedure {_ident(sym.name)}PP{plan.pass_k} "
                f"(VAR N : {_ident(sym.name)}_node_type);",
                HUSK,
            )
            em.emit("begin", HUSK)
            em.emit("case N.PRODUCTION of", HUSK, 1)
            for prod in self.ag.productions_of(sym.name):
                em.emit(
                    f"{prod.index}: {_ident(prod.tag)}PP{plan.pass_k}(N);", HUSK, 2
                )
            em.emit("end", HUSK, 1)
            em.emit("end;", HUSK)
            em.emit("", NOTE)
        for prod in self.ag.productions:
            self._emit_procedure(em, plan.plans[prod.index])
        em.emit(f"end. {{ PASS{plan.pass_k} }}", HUSK)
        return CodeArtifact(
            pass_k=plan.pass_k,
            text=em.text(),
            husk_bytes=em.bytes_of(HUSK),
            sem_bytes=em.bytes_of(SEM),
            n_subsumed=plan.n_subsumed,
        )

    def generate_all(self, pass_plans: List[PassPlan]) -> List[CodeArtifact]:
        return [self.generate_pass(p) for p in pass_plans]
