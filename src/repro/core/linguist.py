"""The LINGUIST main program and its generated translators.

``Linguist(source)`` runs the seven-overlay pipeline over an ``.ag``
source text:

1. **parser overlay** — scan and parse the input, building the
   identifier name table;
2. **first attrib eval overlay** — build the symbol/attribute
   dictionary (semantic analysis, phase 1);
3. **second attrib eval overlay** — resolve semantic functions, insert
   implicit copy-rules, validate (phase 2);
4. **evaluability test overlay** — circularity check and alternating-
   pass assignment;
5. **third attrib eval overlay** — dead-attribute analysis and static
   subsumption (the evaluator-shaping analyses);
6. **listing generation overlay** — the listing file;
7. **evaluator generation overlay** — one generated module per pass
   (run once per pass, like the original's rerun of overlay 7).

The same input also feeds the LALR parse-table builder — "we submit
exactly the same input file to both LINGUIST-86 and the parse-table
builder" (§IV) — and :meth:`Linguist.make_translator` packages tables,
scanner, and generated evaluator into a runnable :class:`Translator`.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional

from repro.ag.circularity import check_noncircular
from repro.ag.model import AttributeGrammar
from repro.ag.stats import GrammarStatistics, compute_statistics
from repro.apt.build import APTBuilder, default_intrinsics
from repro.apt.storage import MemorySpool, Spool
from repro.errors import DiagnosticSink, EvaluationError
from repro.evalgen.codegen_pascal import PascalCodeGenerator
from repro.evalgen.codegen_py import CodeArtifact, GeneratedEvaluator
from repro.evalgen.deadness import DeadnessAnalysis, analyze_deadness
from repro.evalgen.driver import AlternatingPassDriver
from repro.evalgen.husk import CodeSizeReport, measure_code_sizes
from repro.evalgen.interp import InterpretiveEvaluator
from repro.evalgen.plan import PassPlan, build_pass_plans
from repro.evalgen.runtime import EvaluationResult, FunctionLibrary
from repro.evalgen.subsumption import (
    StaticAllocation,
    SubsumptionConfig,
    choose_static_attributes,
)
from repro.frontend.analyze import analyze
from repro.frontend.listing import render_listing
from repro.frontend.syntax import parse_ag_text
from repro.core.overlays import OverlayClock, OverlayTiming
from repro.lalr.parser import LALRParser
from repro.lalr.tables import ParseTables, build_tables
from repro.obs.metrics import MetricsRegistry
from repro.passes.partition import PassAssignment, assign_passes
from repro.passes.schedule import Direction
from repro.regex.generator import ScannerSpec
from repro.regex.scanner import Scanner
from repro.util.iotrack import IOAccountant, MemoryGauge


class Linguist:
    """One run of the translator-writing system over an ``.ag`` text."""

    def __init__(
        self,
        source: str,
        filename: str = "<input>",
        first_direction=Direction.R2L,  # a Direction, or "auto" to try both
        subsumption: Optional[SubsumptionConfig] = None,
        dead_attribute_suppression: bool = True,
        check_circularity: bool = True,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.source = source
        self.filename = filename
        self.sink = DiagnosticSink()
        #: Unified telemetry: every overlay's wall time registers here
        #: under ``overlay.<name>.seconds`` (see docs/observability.md);
        #: benchmarks read this registry rather than private counters.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Structured tracer (repro.obs.Tracer) or None when disabled.
        self.tracer = tracer
        clock = OverlayClock(tracer=tracer, metrics=self.metrics)

        self.ag_file = clock.run(
            "parser overlay", lambda: parse_ag_text(source, filename)
        )
        # Overlays 2 and 3 are the two semantic-analysis passes; our
        # analyze() does both, so we time them as one and charge the
        # validator's copy-rule insertion to the second.
        self.ag: AttributeGrammar = clock.run(
            "first attrib eval overlay", lambda: analyze(self.ag_file, self.sink)
        )
        self.sink.raise_if_errors()
        clock.run(
            "second attrib eval overlay",
            lambda: build_tables(self.ag.underlying_cfg()),
        )
        # (The LALR tables are rebuilt lazily for the translator; the
        # timing above charges the table-construction work.)

        if first_direction != "auto" and not isinstance(first_direction, Direction):
            raise ValueError(
                f"first_direction must be a Direction or 'auto', "
                f"got {first_direction!r}"
            )

        def evaluability():
            if check_circularity:
                check_noncircular(self.ag)
            if first_direction == "auto":
                from repro.passes.partition import choose_first_direction

                return choose_first_direction(self.ag)
            return assign_passes(self.ag, first_direction)

        self.assignment: PassAssignment = clock.run(
            "evaluability test overlay", evaluability
        )

        def shape():
            from repro.evalgen.subsumption import refine_allocation

            dead = analyze_deadness(
                self.ag, self.assignment, enabled=dead_attribute_suppression
            )
            alloc = choose_static_attributes(
                self.ag, self.assignment, subsumption or SubsumptionConfig()
            )
            alloc = refine_allocation(self.ag, self.assignment, alloc, dead)
            return dead, alloc

        self.deadness, self.allocation = clock.run(
            "third attrib eval overlay", shape
        )

        self.listing: str = clock.run(
            "listing generation overlay",
            lambda: render_listing(source, self.ag, self.sink, self.assignment),
        )

        def generate():
            plans = build_pass_plans(
                self.ag, self.assignment, self.deadness, self.allocation
            )
            generated = GeneratedEvaluator(self.ag, plans)
            pascal = PascalCodeGenerator(self.ag).generate_all(plans)
            return plans, generated, pascal

        self.plans: List[PassPlan]
        self.plans, self.generated, self.pascal_artifacts = clock.run(
            "evaluator generation overlay", generate
        )
        self.overlay_times: OverlayTiming = clock.timing
        #: Per-overlay I/O and peak-memory deltas (see StageClock.details).
        self.overlay_details = clock.details
        self._tables: Optional[ParseTables] = None

    # ------------------------------------------------------------------

    @property
    def n_passes(self) -> int:
        return self.assignment.n_passes

    @property
    def statistics(self) -> GrammarStatistics:
        return compute_statistics(self.ag, n_passes=self.n_passes)

    @property
    def python_artifacts(self) -> List[CodeArtifact]:
        return self.generated.artifacts

    def code_sizes(self, language: str = "pascal") -> CodeSizeReport:
        artifacts = (
            self.pascal_artifacts if language == "pascal" else self.python_artifacts
        )
        return measure_code_sizes(self.ag.name, artifacts, language)

    def parse_tables(self) -> ParseTables:
        if self._tables is None:
            self._tables = build_tables(self.ag.underlying_cfg())
        return self._tables

    def make_translator(
        self,
        scanner_spec: Optional[ScannerSpec] = None,
        library: Optional[FunctionLibrary] = None,
        backend: str = "generated",
        intrinsic_fn=default_intrinsics,
    ) -> "Translator":
        """Package the generated evaluator into a runnable translator.

        ``scanner_spec`` describes the *described language's* lexical
        structure (the scanner-generator input of §V); omit it to feed
        pre-scanned token streams to :meth:`Translator.translate_tokens`.
        """
        return Translator(self, scanner_spec, library, backend, intrinsic_fn)


class Translator:
    """The generated product: scanner + LALR parser + attribute evaluator."""

    def __init__(
        self,
        linguist: Linguist,
        scanner_spec: Optional[ScannerSpec],
        library: Optional[FunctionLibrary],
        backend: str,
        intrinsic_fn,
    ):
        self.linguist = linguist
        self.ag = linguist.ag
        self.library = library or FunctionLibrary()
        self.backend = backend
        self.intrinsic_fn = intrinsic_fn
        self.parser = LALRParser(linguist.parse_tables())
        self.scanner: Optional[Scanner] = (
            scanner_spec.generate() if scanner_spec is not None else None
        )
        if backend == "generated":
            self._executor = linguist.generated.executor
        elif backend == "interp":
            self._executor = InterpretiveEvaluator(self.ag).run_pass
        else:
            raise ValueError(f"unknown backend {backend!r}")
        #: Filled by each translate() call.
        self.last_driver: Optional[AlternatingPassDriver] = None

    # ------------------------------------------------------------------

    def translate(
        self,
        text: str,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ) -> EvaluationResult:
        """Scan, parse, and evaluate ``text``.

        ``tracer``/``metrics`` enable the telemetry subsystem for this
        translation (see docs/observability.md); both default to off.
        ``checkpoint_dir`` makes the evaluation durable: every
        completed pass seals its spool there and updates the manifest,
        and ``resume=True`` restarts from the first incomplete pass of
        a previously killed run (see docs/robustness.md).
        """
        if self.scanner is None:
            raise EvaluationError(
                "this translator was built without a scanner spec; "
                "use translate_tokens()"
            )
        return self.translate_tokens(
            self.scanner.tokens(text),
            tracer=tracer,
            metrics=metrics,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )

    def translate_tokens(
        self,
        tokens,
        spool_factory: Optional[Callable[[str], Spool]] = None,
        accountant: Optional[IOAccountant] = None,
        gauge: Optional[MemoryGauge] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ) -> EvaluationResult:
        accountant = accountant if accountant is not None else IOAccountant()
        metrics = metrics if metrics is not None else MetricsRegistry()
        factory = spool_factory or (
            lambda ch: MemorySpool(accountant, ch, tracer=tracer)
        )
        initial = self._build_initial(tokens, factory, tracer, metrics)
        driver = AlternatingPassDriver(
            self.ag,
            self.linguist.plans,
            self._executor,
            library=self.library,
            spool_factory=factory,
            accountant=accountant,
            gauge=gauge,
            tracer=tracer,
            metrics=metrics,
            checkpoint_dir=checkpoint_dir,
        )
        self.last_driver = driver
        strategy = (
            "bottom-up"
            if self.linguist.assignment.first_direction is Direction.R2L
            else "prefix"
        )
        return driver.run(initial, strategy=strategy, resume=resume)

    def _build_initial(
        self,
        tokens,
        factory: Callable[[str], Spool],
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> Spool:
        """Build the initial APT spool per the configured strategy.

        Bottom-up (first pass R-to-L, the paper's own choice) streams
        node records straight out of the parser; the prefix strategy
        (first pass L-to-R, "like a recursive descent parser") retains
        the parse tree and emits it in prefix order.
        """
        initial = factory("initial")
        if tracer is not None and initial.tracer is None:
            initial.tracer = tracer
        if tracer is not None:
            span_ctx = tracer.span("parser overlay", cat="overlay")
        else:
            span_ctx = nullcontext()
        bottom_up = self.linguist.assignment.first_direction is Direction.R2L
        with span_ctx:
            if bottom_up:
                builder = APTBuilder(
                    self.ag,
                    initial,
                    intrinsic_fn=self.intrinsic_fn,
                    build_tree=False,
                    tracer=tracer,
                    metrics=metrics,
                )
                self.parser.parse(
                    tokens, listener=builder, build_tree=False, tracer=tracer
                )
                builder.finish()
            else:
                builder = APTBuilder(
                    self.ag,
                    None,
                    intrinsic_fn=self.intrinsic_fn,
                    build_tree=True,
                    tracer=tracer,
                    metrics=metrics,
                )
                self.parser.parse(
                    tokens, listener=builder, build_tree=False, tracer=tracer
                )
                builder.finish()
                builder.emit_prefix(initial)
        return initial
