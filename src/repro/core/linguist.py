"""The LINGUIST main program and its generated translators.

``Linguist(source)`` runs the seven-overlay pipeline over an ``.ag``
source text:

1. **parser overlay** — scan and parse the input, building the
   identifier name table;
2. **first attrib eval overlay** — build the symbol/attribute
   dictionary (semantic analysis, phase 1);
3. **second attrib eval overlay** — resolve semantic functions, insert
   implicit copy-rules, validate (phase 2);
4. **evaluability test overlay** — circularity check and alternating-
   pass assignment;
5. **third attrib eval overlay** — dead-attribute analysis and static
   subsumption (the evaluator-shaping analyses);
6. **listing generation overlay** — the listing file;
7. **evaluator generation overlay** — one generated module per pass
   (run once per pass, like the original's rerun of overlay 7).

The same input also feeds the LALR parse-table builder — "we submit
exactly the same input file to both LINGUIST-86 and the parse-table
builder" (§IV) — and :meth:`Linguist.make_translator` packages tables,
scanner, and generated evaluator into a runnable :class:`Translator`.

Warm starts
-----------

All of the above is **once-per-grammar** work (§V), so it caches: pass
a :class:`repro.buildcache.BuildCache` as ``cache=`` and a cold build
seals the analyzed model, LALR tables, pass plans, subsumption
decisions, and generated pass-module text into the content-addressed
store; a warm construction rehydrates them and skips straight to
``exec``-compiling the cached text — zero LALR / DFA / planning /
code-generation work (``cache.hit`` counters prove it).  See
``docs/performance.md``.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.ag.circularity import check_noncircular
from repro.ag.model import AttributeGrammar
from repro.ag.stats import GrammarStatistics, compute_statistics
from repro.apt.build import APTBuilder, default_intrinsics
from repro.apt.storage import (
    DEFAULT_SPOOL_MEMORY_BUDGET,
    Spool,
    adaptive_spool_factory,
)
from repro.errors import DiagnosticSink, EvaluationError
from repro.evalgen.codegen_pascal import PascalCodeGenerator
from repro.evalgen.codegen_py import CodeArtifact, GeneratedEvaluator
from repro.evalgen.deadness import DeadnessAnalysis, analyze_deadness
from repro.evalgen.driver import AlternatingPassDriver
from repro.evalgen.husk import CodeSizeReport, measure_code_sizes
from repro.evalgen.interp import InterpretiveEvaluator
from repro.evalgen.plan import PassPlan, build_pass_plans
from repro.evalgen.runtime import EvaluationResult, FunctionLibrary
from repro.evalgen.subsumption import (
    StaticAllocation,
    SubsumptionConfig,
    choose_static_attributes,
)
from repro.frontend.analyze import analyze
from repro.frontend.listing import render_listing
from repro.frontend.syntax import parse_ag_text
from repro.core.overlays import OverlayClock, OverlayTiming
from repro.lalr.parser import LALRParser
from repro.lalr.tables import ParseTables, build_tables
from repro.obs.metrics import MetricsRegistry
from repro.passes.fusion import FusionResult, fuse_assignment
from repro.passes.partition import PassAssignment, assign_passes
from repro.passes.schedule import Direction
from repro.regex.generator import ScannerGenerator, ScannerSpec
from repro.regex.scanner import Scanner
from repro.util.iotrack import IOAccountant, MemoryGauge

#: Keys every cached grammar payload must carry (payloads missing any
#: of these — e.g. written by a future layout — are rebuilt, not trusted).
_PAYLOAD_KEYS = frozenset(
    [
        "ag",
        "assignment",
        "deadness",
        "allocation",
        "plans",
        "artifacts",
        "pascal",
        "listing",
        "tables",
        "fusion",
    ]
)


class Linguist:
    """One run of the translator-writing system over an ``.ag`` text."""

    def __init__(
        self,
        source: str,
        filename: str = "<input>",
        first_direction=Direction.R2L,  # a Direction, or "auto" to try both
        subsumption: Optional[SubsumptionConfig] = None,
        dead_attribute_suppression: bool = True,
        check_circularity: bool = True,
        fuse_passes: bool = True,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        cache=None,
    ):
        if first_direction != "auto" and not isinstance(first_direction, Direction):
            raise ValueError(
                f"first_direction must be a Direction or 'auto', "
                f"got {first_direction!r}"
            )
        self.source = source
        self.filename = filename
        self.sink = DiagnosticSink()
        #: Unified telemetry: every overlay's wall time registers here
        #: under ``overlay.<name>.seconds`` (see docs/observability.md);
        #: benchmarks read this registry rather than private counters.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Structured tracer (repro.obs.Tracer) or None when disabled.
        self.tracer = tracer
        #: Persistent artifact cache (repro.buildcache.BuildCache) or None.
        self.cache = cache
        #: True when this construction rehydrated from the cache.
        self.from_cache = False
        self.first_direction = first_direction
        self.subsumption_config = subsumption
        self.dead_attribute_suppression = dead_attribute_suppression
        self.check_circularity = check_circularity
        #: Whether to statically merge adjacent passes whose attribute
        #: dependencies permit evaluation in one traversal (pass fusion;
        #: see repro.passes.fusion).  Part of the cache key.
        self.fuse_passes = fuse_passes
        #: The fusion outcome (repro.passes.fusion.FusionResult); when
        #: ``fuse_passes`` is False this records zero eliminated passes.
        self.fusion: Optional[FusionResult] = None
        #: The parsed ``.ag`` syntax tree (None on an alias-level warm
        #: start, which skips parsing entirely).
        self.ag_file = None
        self._tables: Optional[ParseTables] = None
        self._analyzed = False
        self._model_key: Optional[str] = None
        self._source_key: Optional[str] = None

        clock = OverlayClock(tracer=tracer, metrics=self.metrics)

        if cache is not None and self._try_warm(clock):
            self.from_cache = True
            self.overlay_times = clock.timing
            self.overlay_details = clock.details
            return

        if not self._analyzed:
            self._parse_and_analyze(clock)
        clock.run(
            "second attrib eval overlay",
            lambda: self._build_tables(),
        )
        # (The timing above charges the LALR table-construction work;
        # the tables are kept for the translator.)

        def evaluability():
            if check_circularity:
                check_noncircular(self.ag)
            if first_direction == "auto":
                from repro.passes.partition import choose_first_direction

                assignment = choose_first_direction(self.ag)
            else:
                assignment = assign_passes(self.ag, first_direction)
            if fuse_passes:
                fusion = fuse_assignment(
                    self.ag, assignment,
                    metrics=self.metrics, tracer=self.tracer,
                )
            else:
                fusion = FusionResult(
                    assignment=assignment,
                    original_n_passes=assignment.n_passes,
                )
            return fusion

        self.fusion = clock.run("evaluability test overlay", evaluability)
        self.assignment: PassAssignment = self.fusion.assignment

        def shape():
            from repro.evalgen.subsumption import refine_allocation

            dead = analyze_deadness(
                self.ag, self.assignment, enabled=dead_attribute_suppression
            )
            alloc = choose_static_attributes(
                self.ag, self.assignment, subsumption or SubsumptionConfig()
            )
            alloc = refine_allocation(self.ag, self.assignment, alloc, dead)
            return dead, alloc

        self.deadness, self.allocation = clock.run(
            "third attrib eval overlay", shape
        )

        self.listing: str = clock.run(
            "listing generation overlay",
            lambda: render_listing(source, self.ag, self.sink, self.assignment),
        )

        def generate():
            plans = build_pass_plans(
                self.ag, self.assignment, self.deadness, self.allocation
            )
            generated = GeneratedEvaluator(self.ag, plans)
            pascal = PascalCodeGenerator(self.ag).generate_all(plans)
            return plans, generated, pascal

        self.plans: List[PassPlan]
        self.plans, self.generated, self.pascal_artifacts = clock.run(
            "evaluator generation overlay", generate
        )
        self.overlay_times: OverlayTiming = clock.timing
        #: Per-overlay I/O and peak-memory deltas (see StageClock.details).
        self.overlay_details = clock.details

        if cache is not None:
            self._store_cache()

    # -- construction helpers ------------------------------------------------

    def _parse_and_analyze(self, clock: OverlayClock) -> None:
        """Overlays 1–2: parse the ``.ag`` text and build the dictionary."""
        self.ag_file = clock.run(
            "parser overlay", lambda: parse_ag_text(self.source, self.filename)
        )
        # Overlays 2 and 3 are the two semantic-analysis passes; our
        # analyze() does both, so we time them as one and charge the
        # validator's copy-rule insertion to the second.
        self.ag: AttributeGrammar = clock.run(
            "first attrib eval overlay", lambda: analyze(self.ag_file, self.sink)
        )
        self.sink.raise_if_errors()
        self._analyzed = True

    def _build_tables(self) -> ParseTables:
        if self._tables is None:
            self._tables = build_tables(self.ag.underlying_cfg())
        return self._tables

    def _strategy_args(self) -> tuple:
        return (
            self.first_direction,
            self.subsumption_config,
            self.dead_attribute_suppression,
            self.check_circularity,
            self.fuse_passes,
        )

    def _try_warm(self, clock: OverlayClock) -> bool:
        """Attempt a warm start from the artifact cache.

        Lookup is two-level: a parse-free *alias* over the raw source
        text, then (on alias miss) the canonical *model* key computed
        after overlays 1–2.  Returns True when every expensive overlay
        (LALR, evaluability, shaping, listing, code generation) was
        skipped; on False, overlays 1–2 may already have run and the
        cold path continues from there.
        """
        from repro.buildcache.key import grammar_key, source_key

        skey = source_key(self.source, *self._strategy_args())
        self._source_key = skey
        payload = None
        alias = self.cache.load(
            "alias", skey, metrics=self.metrics, tracer=self.tracer
        )
        if alias is not None and isinstance(alias.get("target"), str):
            self._model_key = alias["target"]
            payload = self.cache.load(
                "grammar", self._model_key,
                metrics=self.metrics, tracer=self.tracer,
            )
        if payload is None:
            self._parse_and_analyze(clock)
            mkey = grammar_key(self.ag, *self._strategy_args())
            self._model_key = mkey
            payload = self.cache.load(
                "grammar", mkey, metrics=self.metrics, tracer=self.tracer
            )
            if payload is not None:
                # Same model reached from a different serialization of
                # the source: remember the shortcut for next time.
                self.cache.store(
                    "alias", skey, {"target": mkey},
                    metrics=self.metrics, tracer=self.tracer,
                )
        if payload is None or not _PAYLOAD_KEYS <= payload.keys():
            return False
        self._rehydrate(payload)
        return True

    def _rehydrate(self, payload: Dict[str, Any]) -> None:
        """Adopt a cached build wholesale (zero rebuild work).

        The payload's objects are internally consistent — the pass
        assignment, deadness, allocation, and plans all reference the
        payload's own grammar object — so the cached ``ag`` *replaces*
        any freshly analyzed one.
        """
        own_source_lines = self.ag.source_lines if self._analyzed else None
        self.ag = payload["ag"]
        if own_source_lines is not None:
            # Presentation detail, not semantics: the cached model
            # remembers the *original* source's line count; statistics
            # and the listing should report ours.
            self.ag.source_lines = own_source_lines
        self.assignment = payload["assignment"]
        fusion_meta = payload["fusion"]
        self.fusion = FusionResult(
            assignment=self.assignment,
            original_n_passes=fusion_meta["original_n_passes"],
            fused_pairs=[tuple(p) for p in fusion_meta["fused_pairs"]],
        )
        if self.fusion.fused:
            # Re-emit the fusion metrics so `repro profile` attributes
            # the eliminated passes on warm starts too.
            self.metrics.counter("fusion.fused").inc(
                len(self.fusion.fused_pairs)
            )
            self.metrics.counter("fusion.passes_eliminated").inc(
                self.fusion.passes_eliminated
            )
            self.metrics.gauge("fusion.n_passes_before").set(
                self.fusion.original_n_passes
            )
            self.metrics.gauge("fusion.n_passes_after").set(
                self.assignment.n_passes
            )
        self.deadness = payload["deadness"]
        self.allocation = payload["allocation"]
        self.plans = payload["plans"]
        self.pascal_artifacts = payload["pascal"]
        self._tables = payload["tables"]
        if self._analyzed:
            # Model-level hit from a differently spelled source: the
            # cached listing embeds the *original* source text, so
            # re-render against ours (cheap — no analyses rerun).
            self.listing = render_listing(
                self.source, self.ag, self.sink, self.assignment
            )
        else:
            self.listing = payload["listing"]
        # Straight to exec-compiling the cached generated text: no
        # PythonCodeGenerator work on the warm path.
        self.generated = GeneratedEvaluator.from_artifacts(
            self.ag, self.plans, payload["artifacts"]
        )

    def _store_cache(self) -> None:
        from repro.buildcache.key import grammar_key

        if self._model_key is None:
            self._model_key = grammar_key(self.ag, *self._strategy_args())
        payload = {
            "ag": self.ag,
            "assignment": self.assignment,
            "deadness": self.deadness,
            "allocation": self.allocation,
            "plans": self.plans,
            "artifacts": self.generated.artifacts,
            "pascal": self.pascal_artifacts,
            "listing": self.listing,
            "tables": self._build_tables(),
            "fusion": {
                "original_n_passes": self.fusion.original_n_passes,
                "fused_pairs": [list(p) for p in self.fusion.fused_pairs],
            },
        }
        self.cache.store(
            "grammar", self._model_key, payload,
            metrics=self.metrics, tracer=self.tracer,
        )
        if self._source_key is not None:
            self.cache.store(
                "alias", self._source_key, {"target": self._model_key},
                metrics=self.metrics, tracer=self.tracer,
            )

    # ------------------------------------------------------------------

    @property
    def n_passes(self) -> int:
        return self.assignment.n_passes

    @property
    def statistics(self) -> GrammarStatistics:
        return compute_statistics(self.ag, n_passes=self.n_passes)

    @property
    def python_artifacts(self) -> List[CodeArtifact]:
        return self.generated.artifacts

    def code_sizes(self, language: str = "pascal") -> CodeSizeReport:
        artifacts = (
            self.pascal_artifacts if language == "pascal" else self.python_artifacts
        )
        return measure_code_sizes(self.ag.name, artifacts, language)

    def parse_tables(self) -> ParseTables:
        return self._build_tables()

    def make_translator(
        self,
        scanner_spec: Optional[ScannerSpec] = None,
        library: Optional[FunctionLibrary] = None,
        backend: str = "generated",
        intrinsic_fn=default_intrinsics,
    ) -> "Translator":
        """Package the generated evaluator into a runnable translator.

        ``scanner_spec`` describes the *described language's* lexical
        structure (the scanner-generator input of §V); omit it to feed
        pre-scanned token streams to :meth:`Translator.translate_tokens`.
        When this Linguist carries a build cache, the scanner DFA is
        cached/rehydrated through it as well.
        """
        return Translator(self, scanner_spec, library, backend, intrinsic_fn)


class Translator:
    """The generated product: scanner + LALR parser + attribute evaluator."""

    def __init__(
        self,
        linguist: Linguist,
        scanner_spec: Optional[ScannerSpec],
        library: Optional[FunctionLibrary],
        backend: str,
        intrinsic_fn,
    ):
        self.linguist = linguist
        self.ag = linguist.ag
        self.library = library or FunctionLibrary()
        self.backend = backend
        self.intrinsic_fn = intrinsic_fn
        self.parser = LALRParser(linguist.parse_tables())
        self.scanner: Optional[Scanner] = (
            self._make_scanner(scanner_spec) if scanner_spec is not None else None
        )
        if backend == "generated":
            self._executor = linguist.generated.executor
        elif backend == "interp":
            self._executor = InterpretiveEvaluator(self.ag).run_pass
        else:
            raise ValueError(f"unknown backend {backend!r}")
        #: Filled by each translate() call.
        self.last_driver: Optional[AlternatingPassDriver] = None
        #: Lazily-built recording variant of the generated evaluator
        #: (provenance hooks compiled in); the normal executor stays hot.
        self._recording_eval: Optional[GeneratedEvaluator] = None
        #: Lazily-built memo variants (incremental hooks compiled in)
        #: and open MemoStores keyed by absolute memo directory.
        self._memo_eval: Optional[GeneratedEvaluator] = None
        self._memo_recording_eval: Optional[GeneratedEvaluator] = None
        self._memo_identity: Optional[str] = None
        self._memo_stores: Dict[str, Any] = {}
        #: How to rebuild this translator in another process (set by the
        #: batch driver / CLI for shipped grammars; required for
        #: ``translate_many(jobs > 1)``).  A repro.batch.WorkerSpec.
        self.spawn_spec = None

    def _make_scanner(self, spec: ScannerSpec) -> Scanner:
        """Generate (or cache-rehydrate) the described language's scanner."""
        # Plane-attached builds (repro.buildcache.shm.PlaneBuild) carry
        # the already-minimized DFA in shared memory: seed the generator
        # directly — no NFA pipeline, no build-cache traffic.
        plane_dfa = getattr(self.linguist, "scanner_dfa", None)
        if plane_dfa is not None:
            return ScannerGenerator(spec, dfa=plane_dfa).generate()
        cache = self.linguist.cache
        if cache is None:
            return spec.generate()
        from repro.buildcache.key import scanner_key

        metrics = self.linguist.metrics
        tracer = self.linguist.tracer
        key = scanner_key(spec)
        payload = cache.load("scanner", key, metrics=metrics, tracer=tracer)
        dfa = payload.get("dfa") if payload is not None else None
        if dfa is None:
            generator = ScannerGenerator(spec)
            dfa = generator.build_tables()
            cache.store(
                "scanner", key, {"dfa": dfa}, metrics=metrics, tracer=tracer
            )
            return generator.generate()
        # Warm path: the cached DFA seeds the generator, so no NFA /
        # subset construction / minimization runs.
        return ScannerGenerator(spec, dfa=dfa).generate()

    # ------------------------------------------------------------------

    def translate(
        self,
        text: str,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        spool_memory_budget: Optional[int] = None,
        record: Optional[str] = None,
        disk_budget=None,
        memo_dir: Optional[str] = None,
    ) -> EvaluationResult:
        """Scan, parse, and evaluate ``text``.

        ``tracer``/``metrics`` enable the telemetry subsystem for this
        translation (see docs/observability.md); both default to off.
        ``checkpoint_dir`` makes the evaluation durable: every
        completed pass seals its spool there and updates the manifest,
        and ``resume=True`` restarts from the first incomplete pass of
        a previously killed run (see docs/robustness.md).
        ``spool_memory_budget`` caps the bytes each intermediate APT
        spool may keep in memory before spilling to a v3 disk spool
        (None picks the default; 0 forces disk spooling throughout).
        ``disk_budget`` (a :class:`repro.governance.DiskBudget`) caps
        the run's total durable bytes — spool spills and checkpoint
        pass files are charged against it, and the charge that would
        overspend raises a typed
        :class:`~repro.errors.DiskBudgetExceeded` (surfaced on the CLI
        as ``repro run --disk-budget``; see docs/robustness.md).
        ``record`` enables attribute-provenance recording into that
        directory (a sealed NDJSON log plus every pass's sealed spool;
        see docs/debugging.md) — it implies checkpointing into the same
        directory, so the two directories must agree when both given.
        ``memo_dir`` enables incremental re-translation: every pass's
        subtree results memoized there by earlier translations through
        this grammar are spliced instead of re-evaluated wherever the
        subtree and its inherited context are unchanged — when the new
        input even tokenizes to the same kind sequence, the parse
        itself is reused and only the dirty spine from each edited
        token is re-hashed — and the memo is refreshed for the next
        call (see docs/performance.md).  Output is byte-identical to a
        cold run; a damaged memo only costs speed.
        """
        if self.scanner is None:
            raise EvaluationError(
                "this translator was built without a scanner spec; "
                "use translate_tokens()"
            )
        return self.translate_tokens(
            self.scanner.tokens(text),
            tracer=tracer,
            metrics=metrics,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            spool_memory_budget=spool_memory_budget,
            record=record,
            disk_budget=disk_budget,
            memo_dir=memo_dir,
        )

    def translate_many(
        self,
        texts: Sequence[str],
        jobs: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        timeout: Optional[float] = None,
        use_shm: bool = True,
        pipeline_depth: Optional[int] = None,
    ):
        """Translate many independent inputs, optionally in parallel.

        With ``jobs <= 1`` the inputs run sequentially in-process; with
        ``jobs > 1`` they fan out across supervised worker subprocesses
        (:mod:`repro.serve.workers`) that *attach to this translator's
        shared-memory artifact plane* zero-copy (falling back to
        build-cache rehydration, which is why the translator must be
        built through :func:`repro.batch.build_batch_translator` or
        ``repro batch``).  Each input is isolated — one failure is
        reported in its :class:`repro.batch.BatchItem` while the others
        complete.  ``timeout`` bounds every input (enforced by killing
        and restarting the worker, so it implies the supervised path
        even for ``jobs=1``).  ``use_shm``/``pipeline_depth`` are the
        plane and pipelining knobs of :func:`repro.batch.run_batch`.
        Returns a :class:`repro.batch.BatchReport`.
        """
        from repro.batch import DEFAULT_PIPELINE_DEPTH, run_batch

        return run_batch(
            self, texts, jobs=jobs, metrics=metrics, tracer=tracer,
            timeout=timeout, use_shm=use_shm,
            pipeline_depth=(
                DEFAULT_PIPELINE_DEPTH
                if pipeline_depth is None
                else pipeline_depth
            ),
        )

    def translate_tokens(
        self,
        tokens,
        spool_factory: Optional[Callable[[str], Spool]] = None,
        accountant: Optional[IOAccountant] = None,
        gauge: Optional[MemoryGauge] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        spool_memory_budget: Optional[int] = None,
        record: Optional[str] = None,
        disk_budget=None,
        memo_dir: Optional[str] = None,
    ) -> EvaluationResult:
        accountant = accountant if accountant is not None else IOAccountant()
        metrics = metrics if metrics is not None else MetricsRegistry()
        factory = spool_factory or adaptive_spool_factory(
            accountant,
            tracer=tracer,
            metrics=metrics,
            memory_budget=(
                DEFAULT_SPOOL_MEMORY_BUDGET
                if spool_memory_budget is None
                else spool_memory_budget
            ),
            disk_budget=disk_budget,
        )
        recorder = None
        executor = self._executor
        if record is not None:
            if checkpoint_dir is not None and os.path.abspath(
                checkpoint_dir
            ) != os.path.abspath(record):
                raise EvaluationError(
                    "record= implies checkpointing into the record "
                    f"directory, but checkpoint_dir={checkpoint_dir!r} "
                    f"differs from record={record!r}"
                )
            checkpoint_dir = record
            from repro.obs.provenance import ProvenanceRecorder

            recorder = ProvenanceRecorder(
                record,
                grammar=self.ag.name,
                backend=self.backend,
                start=self.ag.start,
                productions=self.ag.productions,
                metrics=metrics,
            )
            if self.backend == "generated":
                # Recording variant: same plans, provenance hooks
                # compiled in.  Built once and kept; the non-recording
                # executor (and its cached text) is untouched.
                if self._recording_eval is None:
                    self._recording_eval = GeneratedEvaluator(
                        self.ag, self.linguist.plans, recording=True
                    )
                executor = self._recording_eval.executor
            # The initial spool must survive in the record directory for
            # the debug session's history queries; intermediates still go
            # through the normal factory (the checkpoint manager seals
            # every pass spool into the directory).
            from repro.apt.storage import DiskSpool

            inner_factory = factory

            def factory(name: str) -> Spool:
                if name == "initial":
                    return DiskSpool(
                        os.path.join(record, "initial.spool"),
                        accountant=accountant,
                        channel="initial",
                        tracer=tracer,
                        metrics=metrics,
                    )
                return inner_factory(name)

        memo = None
        if memo_dir is not None:
            memo = self._memo_store(memo_dir, metrics=metrics, tracer=tracer)
            if self.backend == "generated":
                # Memo variants: same plans, incremental VISIT hooks
                # compiled in.  The plain executor (and its cached
                # text) is untouched, so memo_dir=None stays tax-free.
                if recorder is not None:
                    if self._memo_recording_eval is None:
                        self._memo_recording_eval = GeneratedEvaluator(
                            self.ag, self.linguist.plans,
                            recording=True, memo=True,
                        )
                    executor = self._memo_recording_eval.executor
                else:
                    if self._memo_eval is None:
                        self._memo_eval = GeneratedEvaluator(
                            self.ag, self.linguist.plans, memo=True
                        )
                    executor = self._memo_eval.executor

        strategy = (
            "bottom-up"
            if self.linguist.assignment.first_direction is Direction.R2L
            else "prefix"
        )
        initial = None
        token_list = None
        if memo is not None and recorder is None and checkpoint_dir is None:
            # Front-end reuse needs the materialized token stream: when
            # the kind sequence matches the memoized run, the LR parse
            # is identical and the cached initial records are patched
            # (leaf intrinsics recomputed, dirty spine rehashed)
            # instead of re-parsing.  Checkpointed/recorded runs build
            # their durable initial spool the normal way.
            token_list = tokens if isinstance(tokens, list) else list(tokens)
            tokens = token_list
            initial = memo.reuse_frontend(
                token_list, strategy == "prefix", self.intrinsic_fn
            )
        if initial is None:
            initial = self._build_initial(tokens, factory, tracer, metrics)
            if token_list is not None:
                memo.cache_frontend(
                    token_list, initial, strategy == "prefix"
                )
        driver = AlternatingPassDriver(
            self.ag,
            self.linguist.plans,
            executor,
            library=self.library,
            spool_factory=factory,
            accountant=accountant,
            gauge=gauge,
            tracer=tracer,
            metrics=metrics,
            checkpoint_dir=checkpoint_dir,
            recorder=recorder,
            disk_budget=disk_budget,
            memo=memo,
        )
        self.last_driver = driver
        return driver.run(initial, strategy=strategy, resume=resume)

    def _memo_store(self, memo_dir: str, metrics=None, tracer=None):
        """Open (or reuse) the :class:`repro.passes.incremental.MemoStore`
        for ``memo_dir``.  Stores are cached per directory so repeated
        translations through one translator splice from the in-memory
        entry table without re-reading the manifest; the identity hash
        is computed once per translator."""
        from repro.passes.incremental import MemoStore, memo_identity

        key = os.path.abspath(memo_dir)
        store = self._memo_stores.get(key)
        if store is not None:
            store.metrics = metrics
            store.tracer = tracer
            return store
        if self._memo_identity is None:
            self._memo_identity = memo_identity(
                self.ag, self.linguist.plans, self.library
            )
        store = MemoStore(
            key,
            self.ag,
            self.linguist.plans,
            library=self.library,
            identity=self._memo_identity,
            metrics=metrics,
            tracer=tracer,
        )
        self._memo_stores[key] = store
        return store

    def _build_initial(
        self,
        tokens,
        factory: Callable[[str], Spool],
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> Spool:
        """Build the initial APT spool per the configured strategy.

        Bottom-up (first pass R-to-L, the paper's own choice) streams
        node records straight out of the parser; the prefix strategy
        (first pass L-to-R, "like a recursive descent parser") retains
        the parse tree and emits it in prefix order.
        """
        initial = factory("initial")
        if tracer is not None and initial.tracer is None:
            initial.tracer = tracer
        if tracer is not None:
            span_ctx = tracer.span("parser overlay", cat="overlay")
        else:
            span_ctx = nullcontext()
        bottom_up = self.linguist.assignment.first_direction is Direction.R2L
        with span_ctx:
            if bottom_up:
                builder = APTBuilder(
                    self.ag,
                    initial,
                    intrinsic_fn=self.intrinsic_fn,
                    build_tree=False,
                    tracer=tracer,
                    metrics=metrics,
                )
                self.parser.parse(
                    tokens, listener=builder, build_tree=False, tracer=tracer
                )
                builder.finish()
            else:
                builder = APTBuilder(
                    self.ag,
                    None,
                    intrinsic_fn=self.intrinsic_fn,
                    build_tree=True,
                    tracer=tracer,
                    metrics=metrics,
                )
                self.parser.parse(
                    tokens, listener=builder, build_tree=False, tracer=tracer
                )
                builder.finish()
                builder.emit_prefix(initial)
        return initial
