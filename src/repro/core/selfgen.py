"""Self-generation: the bootstrap fixpoint check (EXP-S1).

The paper's headline: "LINGUIST-86 is itself written as an 1800-line
attribute grammar and is self-generating."  Here, ``linguist.ag``
describes the LINGUIST input language and computes the dictionary —
symbol set, attribute/production/semantic-function/copy-rule counts,
undeclared-symbol diagnostics — as attributes of the root.

The bootstrap check: feed ``linguist.ag`` to :class:`Linguist` (the
hand-written system), take the *generated* evaluator, and run it on any
``.ag`` source — including ``linguist.ag`` itself.  The root attributes
the generated evaluator computes must equal what a direct analysis of
the same source yields.  When the input *is* the self-description, the
system has reproduced its own dictionary: the fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ag.expr import AttrRef
from repro.core.linguist import Linguist, Translator
from repro.errors import EvaluationError
from repro.frontend.astnodes import AGFile
from repro.frontend.lexer import LEXICAL_SPEC
from repro.frontend.syntax import parse_ag_text
from repro.grammars import library_for, load_source


@dataclass
class DictionarySummary:
    """The dictionary counts both sides of the bootstrap compute."""

    n_syms: int
    n_attrs: int
    n_prods: int
    n_funcs: int
    n_copies: int
    n_msgs: int
    symbols: frozenset  # of (name, kind) pairs
    n_occs: int = 0  # attribute-occurrences (the paper's 1202 statistic)

    def __eq__(self, other) -> bool:
        if not isinstance(other, DictionarySummary):
            return NotImplemented
        return (
            self.n_syms == other.n_syms
            and self.n_attrs == other.n_attrs
            and self.n_prods == other.n_prods
            and self.n_funcs == other.n_funcs
            and self.n_copies == other.n_copies
            and self.n_msgs == other.n_msgs
            and self.symbols == other.symbols
            and self.n_occs == other.n_occs
        )


def summary_from_ast(ag_file: AGFile) -> DictionarySummary:
    """Direct (hand-written) computation of the dictionary summary.

    Purely syntactic, by design: it counts exactly what the
    self-description's semantic functions count — explicit functions
    only, and a "copy-rule" is a function whose right-hand side is a
    qualified attribute reference.
    """
    symbols = set()
    kind_map = {"nonterminal": "nonterminal$k", "terminal": "terminal$k",
                "limb": "limb$k"}
    for decl in ag_file.symdecls:
        for name in decl.names:
            symbols.add((name, kind_map[decl.kind]))
    n_attrs = sum(len(d.specs) for d in ag_file.attrdecls)
    n_funcs = 0
    n_copies = 0
    for prod in ag_file.prods:
        for func in prod.funcs:
            n_funcs += 1
            if isinstance(func.expr, AttrRef) and func.expr.occ_name:
                n_copies += 1
    return DictionarySummary(
        n_syms=len(symbols),
        n_attrs=n_attrs,
        n_prods=len(ag_file.prods),
        n_funcs=n_funcs,
        n_copies=n_copies,
        n_msgs=_count_msgs(ag_file),
        symbols=frozenset(symbols),
        n_occs=_count_occurrences(ag_file),
    )


def _count_occurrences(ag_file: AGFile) -> int:
    """Attribute-occurrence count, mirroring the self-description's
    computation: for every production, the declared attribute counts of
    the LHS, each RHS occurrence, and the limb."""
    import re

    attrs_of: Dict[str, int] = {}
    for decl in ag_file.attrdecls:
        attrs_of[decl.symbol] = len(decl.specs)  # later decls override

    def count(spelling: str) -> int:
        if spelling in attrs_of:
            return attrs_of[spelling]
        return attrs_of.get(re.sub(r"\d+$", "", spelling), 0)

    total = 0
    for prod in ag_file.prods:
        total += count(prod.lhs)
        for sym in prod.rhs:
            total += count(sym)
        if prod.limb:
            total += count(prod.limb)
    return total


def _count_msgs(ag_file: AGFile) -> int:
    """Diagnostics the self-description reports: undeclared start symbol,
    attributes for unknown symbols, undeclared symbols in productions."""
    import re

    declared = {name for d in ag_file.symdecls for name in d.names}

    def known(spelling: str) -> bool:
        if spelling in declared:
            return True
        return re.sub(r"\d+$", "", spelling) in declared

    n = 0
    if not known(ag_file.start):
        n += 1
    for decl in ag_file.attrdecls:
        if not known(decl.symbol):
            n += 1
    for prod in ag_file.prods:
        if not known(prod.lhs):
            n += 1
        for sym in prod.rhs:
            if not known(sym):
                n += 1
        if prod.limb and not known(prod.limb):
            n += 1
    return n


def summary_from_result(result) -> DictionarySummary:
    """The generated evaluator's root attributes, as a summary."""
    return DictionarySummary(
        n_syms=result["N$SYMS"],
        n_attrs=result["N$ATTRS"],
        n_prods=result["N$PRODS"],
        n_funcs=result["N$FUNCS"],
        n_copies=result["N$COPIES"],
        n_msgs=len(list(result["MSGS"])),
        symbols=frozenset(result["SYMS"]) if "SYMS" in result else frozenset(),
        n_occs=result["N$OCCS"],
    )


class SelfGeneration:
    """Builds the self-described translator and runs bootstrap checks."""

    def __init__(self, backend: str = "generated"):
        self.source = load_source("linguist")
        # Paper fidelity: the self-description is the paper's own
        # 4-alternating-pass grammar (§IV), so the bootstrap check runs
        # unfused; fusion would legally merge the first pair (4 -> 3,
        # see repro.passes.fusion) but then the pass-count claims of the
        # bootstrap report would no longer mirror the paper's.
        self.linguist = Linguist(self.source, fuse_passes=False)
        self.translator: Translator = self.linguist.make_translator(
            LEXICAL_SPEC, library=library_for("linguist"), backend=backend
        )

    def analyze_with_generated_evaluator(self, ag_source: str) -> DictionarySummary:
        """Run the generated evaluator over an ``.ag`` source text."""
        result = self.translator.translate(ag_source)
        summary = summary_from_result(result)
        # SYMS is computed but may be suppressed from the final record by
        # the dead-attribute analysis when only counted — recover it from
        # the direct side if absent.
        return summary

    def bootstrap_check(self, ag_source: Optional[str] = None) -> Tuple[
        DictionarySummary, DictionarySummary
    ]:
        """Compare generated-evaluator output against direct analysis.

        Default input: the self-description itself (the fixpoint check).
        Returns (machine, hand); raises if they disagree.
        """
        source = ag_source if ag_source is not None else self.source
        machine = self.analyze_with_generated_evaluator(source)
        hand = summary_from_ast(parse_ag_text(source))
        if not _summaries_agree(machine, hand):
            raise EvaluationError(
                "self-generation bootstrap FAILED:\n"
                f"  generated evaluator: {machine}\n"
                f"  hand analysis:       {hand}"
            )
        return machine, hand

    def check_consistency_attr(self, ag_source: Optional[str] = None) -> bool:
        """The pass-4 cross-check: every production saw the full report
        list, so N$CHECK equals N$PRODS."""
        source = ag_source if ag_source is not None else self.source
        result = self.translator.translate(source)
        return result["N$CHECK"] == result["N$PRODS"]


def _summaries_agree(machine: DictionarySummary, hand: DictionarySummary) -> bool:
    if (machine.n_syms, machine.n_attrs, machine.n_prods, machine.n_funcs,
            machine.n_copies, machine.n_msgs, machine.n_occs) != (
            hand.n_syms, hand.n_attrs, hand.n_prods, hand.n_funcs,
            hand.n_copies, hand.n_msgs, hand.n_occs):
        return False
    if machine.symbols and machine.symbols != hand.symbols:
        return False
    return True
