"""The translator-writing system proper.

:class:`repro.core.linguist.Linguist` is the paper's main program: an
overlay/pass-structured pipeline from ``.ag`` source text to generated
alternating-pass evaluators (plus listing, statistics, and the LALR
tables for the described language).  :class:`repro.core.linguist.Translator`
is the generated product — scanner + parser + evaluator — ready to
translate inputs of the described language.
:mod:`repro.core.selfgen` performs the self-generation bootstrap check.
"""

from repro.core.linguist import Linguist, Translator
from repro.core.overlays import OverlayTiming

__all__ = ["Linguist", "Translator", "OverlayTiming"]
