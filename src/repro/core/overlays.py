"""Overlay bookkeeping.

§V: "LINGUIST-86 is an overlayed, pass-structured program consisting of
seven overlays and six passes … The time used by each overlay when
processing LINGUIST-86's attribute grammar is shown in the table."
We reproduce the same decomposition and per-overlay timing (EXP-T3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

#: Overlay names in pipeline order, matching §V's table rows.
OVERLAY_NAMES = [
    "parser overlay",
    "first attrib eval overlay",
    "second attrib eval overlay",
    "evaluability test overlay",
    "third attrib eval overlay",
    "listing generation overlay",
    "evaluator generation overlay",
]


@dataclass
class OverlayTiming:
    """Per-overlay wall-clock times of one Linguist run."""

    entries: List[Tuple[str, float]] = field(default_factory=list)

    def record(self, name: str, seconds: float) -> None:
        self.entries.append((name, seconds))

    @property
    def total(self) -> float:
        return sum(t for _, t in self.entries)

    def render(self) -> str:
        width = max(len(n) for n, _ in self.entries) if self.entries else 10
        lines = [
            f"  {name:>{width}} - {seconds * 1000:8.1f} ms"
            for name, seconds in self.entries
        ]
        lines.append(f"  {'TOTAL':>{width}} - {self.total * 1000:8.1f} ms")
        return "\n".join(lines)


class OverlayClock:
    """Times named overlay stages."""

    def __init__(self) -> None:
        self.timing = OverlayTiming()

    def run(self, name: str, thunk: Callable[[], object]) -> object:
        started = time.perf_counter()
        result = thunk()
        self.timing.record(name, time.perf_counter() - started)
        return result
