"""Overlay bookkeeping.

§V: "LINGUIST-86 is an overlayed, pass-structured program consisting of
seven overlays and six passes … The time used by each overlay when
processing LINGUIST-86's attribute grammar is shown in the table."
We reproduce the same decomposition and per-overlay timing (EXP-T3).

The timing machinery itself is the generic
:class:`~repro.obs.metrics.StageClock` of the telemetry subsystem; the
classes here are thin domain-named shims so the overlay pipeline can be
traced (one span per overlay) and metered (``overlay.<name>.seconds``
in the unified :class:`~repro.obs.metrics.MetricsRegistry` snapshot)
without any caller changes.
"""

from __future__ import annotations

from repro.obs.metrics import StageClock, StageTimes

#: Overlay names in pipeline order, matching §V's table rows.
OVERLAY_NAMES = [
    "parser overlay",
    "first attrib eval overlay",
    "second attrib eval overlay",
    "evaluability test overlay",
    "third attrib eval overlay",
    "listing generation overlay",
    "evaluator generation overlay",
]


class OverlayTiming(StageTimes):
    """Per-overlay wall-clock times of one Linguist run."""


class OverlayClock(StageClock):
    """Times named overlay stages (optionally tracing/metering them)."""

    timing_factory = OverlayTiming
