"""Parallel batch translation over the persistent build cache.

The paper's economics (§V) — expensive once-per-grammar build, cheap
streaming per-input translation — invite exactly one scaling move for
serving many inputs: **warm the artifact cache once, then fan the
independent inputs out across worker processes that rehydrate from the
cache instead of rebuilding**.  This module is that batch driver:

* :func:`build_batch_translator` constructs a
  :class:`~repro.core.Translator` for a shipped grammar *through* a
  :class:`~repro.buildcache.BuildCache` and records the recipe
  (:class:`WorkerSpec`) workers need to reconstruct it;
* :func:`run_batch` (surfaced as
  :meth:`repro.core.Translator.translate_many` and the ``repro batch``
  CLI) fans inputs across **supervised** worker processes
  (:class:`repro.serve.workers.WorkerHandle` — the same lifecycle the
  serve daemon uses) with **per-input isolation** — one failed input
  is reported in its :class:`BatchItem` while every other input
  completes;
* ``timeout=`` (CLI ``--timeout``) bounds every input: a hung input is
  recorded as a failed :class:`BatchItem` with a typed
  :class:`~repro.errors.TranslationTimeout` and its worker is killed
  and restarted, so one pathological input never stalls the pool;
* ``KeyboardInterrupt`` terminates the workers and returns a *partial*
  :class:`BatchReport` (``interrupted=True``) instead of hanging in
  the pool join;
* telemetry lands in the ``batch.*`` counters/gauges and ``batch.*``
  trace instants (see ``docs/performance.md``).

Sequential (``jobs <= 1``) and parallel executions produce identical
results; the differential suite pins that down.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    EvaluationError,
    ReproError,
    TranslationTimeout,
    WorkerCrashed,
)
from repro.evalgen.runtime import EvaluationResult

@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild the translator.

    Deliberately tiny and picklable: the *source text* and knobs, never
    live objects — workers rehydrate the expensive artifacts from the
    on-disk build cache at ``cache_dir`` (a cold worker would rebuild
    and re-seal them, so correctness never depends on cache state).
    """

    source: str
    filename: str
    grammar_name: str
    direction: str  # "r2l" | "l2r" | "auto"
    cache_dir: str
    backend: str = "generated"


@dataclass
class BatchItem:
    """Outcome of one input: a result or an isolated failure."""

    index: int
    ok: bool
    result: Optional[EvaluationResult] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    seconds: float = 0.0


@dataclass
class BatchReport:
    """Outcome of a whole batch, in input order.

    ``interrupted=True`` marks a partial report: the run was cut short
    (KeyboardInterrupt), workers were terminated, and ``items`` holds
    only the inputs that finished before the cut.
    """

    items: List[BatchItem] = field(default_factory=list)
    jobs: int = 1
    seconds: float = 0.0
    interrupted: bool = False

    @property
    def n_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    def failures(self) -> List[BatchItem]:
        return [item for item in self.items if not item.ok]

    def raise_if_failed(self) -> None:
        if not self.ok:
            first = self.failures()[0]
            raise EvaluationError(
                f"{self.n_failed} of {len(self.items)} batch input(s) failed; "
                f"first: input {first.index}: "
                f"{first.error_type}: {first.error}"
            )


# ---------------------------------------------------------------------------
# building translators through the cache
# ---------------------------------------------------------------------------


def direction_of(name: str):
    from repro.passes.schedule import Direction

    return {"r2l": Direction.R2L, "l2r": Direction.L2R, "auto": "auto"}[name]


def build_batch_translator(
    spec: WorkerSpec,
    metrics=None,
    tracer=None,
):
    """Build (or cache-rehydrate) the translator a :class:`WorkerSpec`
    describes, and stamp the spec onto it for later fan-out."""
    from repro.buildcache import BuildCache
    from repro.core import Linguist
    from repro.grammars import scanner_and_library

    scanner_spec, library = scanner_and_library(spec.grammar_name)
    if scanner_spec is None:
        raise EvaluationError(
            f"no shipped scanner for grammar {spec.grammar_name!r}; "
            "batch translation needs a scanner specification"
        )
    cache = BuildCache(spec.cache_dir)
    linguist = Linguist(
        spec.source,
        filename=spec.filename,
        first_direction=direction_of(spec.direction),
        tracer=tracer,
        metrics=metrics,
        cache=cache,
    )
    translator = linguist.make_translator(
        scanner_spec, library=library, backend=spec.backend
    )
    translator.spawn_spec = spec
    return translator


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
#
# The worker lifecycle itself lives in repro.serve.workers (WorkerHandle
# + worker_main): the serve daemon and the batch driver share one
# supervised-subprocess implementation, so a batch worker and a serve
# worker are the same code path producing byte-identical results.


def _item_from_tuple(data: Tuple[Any, ...]) -> BatchItem:
    index, ok, attrs, n_passes, error_type, error, seconds = data
    return BatchItem(
        index=index,
        ok=ok,
        result=EvaluationResult(attrs, n_passes) if ok else None,
        error_type=error_type,
        error=error,
        seconds=seconds,
    )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


def run_batch(
    translator,
    texts: Sequence[str],
    jobs: int = 1,
    metrics=None,
    tracer=None,
    timeout: Optional[float] = None,
) -> BatchReport:
    """Translate ``texts`` through ``translator``; see
    :meth:`repro.core.Translator.translate_many`.

    ``timeout`` (seconds) bounds each input.  Deadlines are enforced by
    killing the worker process that holds the hung input, so a timeout
    requires the supervised-worker path: with ``jobs <= 1`` and a
    timeout the batch still runs through one supervised subprocess
    (same results, enforceable deadline) rather than in-process.
    """
    texts = list(texts)
    started = time.perf_counter()
    if tracer is not None:
        tracer.instant(
            "batch.start", cat="batch", inputs=len(texts), jobs=jobs
        )
    interrupted = False
    if jobs > 1 or timeout is not None:
        items, interrupted = _run_supervised(
            translator, texts, max(1, jobs), timeout, metrics
        )
    else:
        items = _run_sequential(translator, texts)
    report = BatchReport(
        items=items,
        jobs=max(1, jobs),
        seconds=time.perf_counter() - started,
        interrupted=interrupted,
    )
    if metrics is not None:
        metrics.counter("batch.inputs").inc(len(texts))
        metrics.counter("batch.ok").inc(report.n_ok)
        metrics.counter("batch.failed").inc(report.n_failed)
        metrics.gauge("batch.jobs").set(report.jobs)
        metrics.gauge("batch.seconds").set(report.seconds)
        if interrupted:
            metrics.counter("batch.interrupted").inc()
        for item in items:
            metrics.histogram("batch.item.seconds").observe(item.seconds)
            if item.error_type == "TranslationTimeout":
                metrics.counter("batch.timeouts").inc()
    if tracer is not None:
        for item in items:
            tracer.instant(
                "batch.item",
                cat="batch",
                index=item.index,
                ok=item.ok,
                seconds=item.seconds,
                error=item.error_type,
            )
        tracer.instant(
            "batch.done",
            cat="batch",
            ok=report.n_ok,
            failed=report.n_failed,
            seconds=report.seconds,
        )
    return report


def _run_sequential(translator, texts: Sequence[str]) -> List[BatchItem]:
    items: List[BatchItem] = []
    for index, text in enumerate(texts):
        t0 = time.perf_counter()
        try:
            result = translator.translate(text)
        except Exception as exc:
            items.append(
                BatchItem(
                    index=index,
                    ok=False,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    seconds=time.perf_counter() - t0,
                )
            )
        else:
            items.append(
                BatchItem(
                    index=index,
                    ok=True,
                    result=result,
                    seconds=time.perf_counter() - t0,
                )
            )
    return items


def _run_supervised(
    translator,
    texts: Sequence[str],
    jobs: int,
    timeout: Optional[float],
    metrics=None,
) -> Tuple[List[BatchItem], bool]:
    """Fan inputs across supervised worker subprocesses.

    One driver thread per worker pulls inputs off a shared deque and
    runs them through its :class:`~repro.serve.workers.WorkerHandle`.
    A timed-out or crashed worker is killed and restarted (the input is
    recorded as a failed item — per-input isolation); Ctrl-C kills the
    workers and returns whatever finished (``interrupted=True``).
    """
    from repro.serve.workers import WorkerHandle

    spec = getattr(translator, "spawn_spec", None)
    if spec is None:
        raise EvaluationError(
            "supervised batch execution (jobs > 1, or timeout=) needs a "
            "worker spec: build the translator via "
            "repro.batch.build_batch_translator (or the `repro batch` "
            "CLI) so workers know how to rehydrate it from the build "
            "cache"
        )
    # The artifacts the workers rehydrate are sealed on disk (unless the
    # cache was cleared since construction — then workers rebuild once
    # per process; slower, never wrong).
    handles = [
        WorkerHandle(spec, worker_id=i, metrics=metrics).start()
        for i in range(jobs)
    ]
    pending = deque(enumerate(texts))
    done: Dict[int, BatchItem] = {}
    lock = threading.Lock()
    stop = threading.Event()

    def drive(handle: WorkerHandle) -> None:
        while not stop.is_set():
            with lock:
                if not pending:
                    return
                index, text = pending.popleft()
            t0 = time.perf_counter()
            try:
                answer = handle.call(
                    index, text, timeout=timeout, cancelled=stop.is_set
                )
            except TranslationTimeout as exc:
                item = BatchItem(
                    index=index,
                    ok=False,
                    error_type="TranslationTimeout",
                    error=str(exc),
                    seconds=time.perf_counter() - t0,
                )
                if not stop.is_set():
                    handle.restart()  # the old incarnation is wedged
            except WorkerCrashed as exc:
                if stop.is_set():
                    return  # shutdown, not a verdict on this input
                item = BatchItem(
                    index=index,
                    ok=False,
                    error_type="WorkerCrashed",
                    error=str(exc),
                    seconds=time.perf_counter() - t0,
                )
                handle.restart()
            else:
                item = _item_from_tuple(answer)
            with lock:
                done[index] = item

    threads = [
        threading.Thread(
            target=drive, args=(handle,), name=f"batch-driver-{i}"
        )
        for i, handle in enumerate(handles)
    ]
    for thread in threads:
        thread.start()
    interrupted = False
    try:
        # join() in a loop so the main thread stays interruptible — the
        # old multiprocessing.Pool path hung in join() on Ctrl-C.
        while any(thread.is_alive() for thread in threads):
            for thread in threads:
                thread.join(timeout=0.1)
    except KeyboardInterrupt:
        interrupted = True
        stop.set()
        # Join the drivers BEFORE kill() discards the queues: a driver
        # may be inside handle.call()'s response_q.get(), and yanking
        # the queue out from under it would crash the thread instead of
        # letting the cancelled callback end it within one poll.
        for thread in threads:
            thread.join(timeout=5.0)
        for handle in handles:
            handle.kill()
    finally:
        for handle in handles:
            handle.stop(grace=0.5)
    return sorted(done.values(), key=lambda item: item.index), interrupted
