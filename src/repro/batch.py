"""Parallel batch translation over a zero-copy shared artifact plane.

The paper's economics (§V) — expensive once-per-grammar build, cheap
streaming per-input translation — invite exactly one scaling move for
serving many inputs: **build the artifacts once, then fan the
independent inputs out across worker processes that attach to them
instead of rebuilding**.  This module is that batch driver:

* :func:`build_batch_translator` constructs a
  :class:`~repro.core.Translator` for a shipped grammar *through* a
  :class:`~repro.buildcache.BuildCache` and records the recipe
  (:class:`WorkerSpec`) workers need to reconstruct it;
* :func:`run_batch` (surfaced as
  :meth:`repro.core.Translator.translate_many` and the ``repro batch``
  CLI) seals the built artifacts into a **shared-memory artifact
  plane** (:mod:`repro.buildcache.shm`) and fans inputs across
  **supervised** worker processes
  (:class:`repro.serve.workers.WorkerHandle` — the same lifecycle the
  serve daemon uses) started through a **forkserver**; each worker
  attaches to the plane zero-copy (:func:`build_worker_translator`)
  instead of paying a per-worker cache rehydration, and falls back to
  the build cache when the plane is unavailable — slower, never wrong;
* execution is **pipelined** at two levels: the driver keeps up to
  ``pipeline_depth`` inputs in flight per worker, and inside each
  worker a scan-ahead thread lexes input N+1 while input N is being
  evaluated and its response flushed — with **per-input isolation**
  preserved: one failed input is reported in its :class:`BatchItem`
  while every other input completes (an input lost to a worker crash
  while merely *queued* behind the culprit is re-dispatched once);
* ``timeout=`` (CLI ``--timeout``) bounds every input: a hung input is
  recorded as a failed :class:`BatchItem` with a typed
  :class:`~repro.errors.TranslationTimeout` and its worker is killed
  and restarted, so one pathological input never stalls the pool
  (deadlines collapse the pipeline to depth 1 so a queued input's
  clock never runs while its predecessor executes);
* ``KeyboardInterrupt`` terminates the workers, unlinks the plane, and
  returns a *partial* :class:`BatchReport` (``interrupted=True``)
  instead of hanging in the pool join;
* telemetry lands in the ``batch.*`` counters/gauges (including
  ``batch.shm.*`` and ``batch.pipeline.*``) and ``batch.*`` trace
  instants (see ``docs/performance.md``).

Sequential (``jobs <= 1``) and parallel executions produce identical
results; the differential suite pins that down — including a dedicated
shm-attached axis.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    EvaluationError,
    PlaneError,
    ReproError,
    TranslationTimeout,
    WorkerCrashed,
)
from repro.evalgen.runtime import EvaluationResult

#: How many inputs the driver keeps in flight per worker by default
#: (the worker's scan-ahead stage overlaps them; see module docstring).
DEFAULT_PIPELINE_DEPTH = 2

#: An input lost to a worker crash while *queued* (not necessarily the
#: input that killed the worker) is re-dispatched up to this many times
#: in total before it is reported as failed.  A deterministic crasher
#: therefore fails after the cap while its innocent queue-mates
#: complete on the retry.
_MAX_ATTEMPTS = 2


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to reconstruct the translator.

    Deliberately tiny and picklable: the *source text* and knobs, never
    live objects.  ``shm_plane`` (stamped by the driver) names the
    shared-memory artifact plane the worker attaches to zero-copy;
    without it — or when the plane is gone — workers rehydrate the
    expensive artifacts from the on-disk build cache at ``cache_dir``
    (a cold worker would rebuild and re-seal them, so correctness never
    depends on cache *or* plane state).
    """

    source: str
    filename: str
    grammar_name: str
    direction: str  # "r2l" | "l2r" | "auto"
    cache_dir: str
    backend: str = "generated"
    #: Shared-memory segment name of the exported artifact plane, or
    #: None to hydrate from the build cache.
    shm_plane: Optional[str] = None
    #: Incremental-memo root for this grammar, or None to translate
    #: cold.  Worker processes write to a per-pid subdirectory (one
    #: MEMO1 writer per directory); the sequential path uses the
    #: directory itself.
    memo_dir: Optional[str] = None


@dataclass
class BatchItem:
    """Outcome of one input: a result or an isolated failure."""

    index: int
    ok: bool
    result: Optional[EvaluationResult] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    seconds: float = 0.0


@dataclass
class BatchReport:
    """Outcome of a whole batch, in input order.

    ``interrupted=True`` marks a partial report: the run was cut short
    (KeyboardInterrupt), workers were terminated, and ``items`` holds
    only the inputs that finished before the cut.
    """

    items: List[BatchItem] = field(default_factory=list)
    jobs: int = 1
    seconds: float = 0.0
    interrupted: bool = False

    @property
    def n_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    def failures(self) -> List[BatchItem]:
        return [item for item in self.items if not item.ok]

    def raise_if_failed(self) -> None:
        if not self.ok:
            first = self.failures()[0]
            raise EvaluationError(
                f"{self.n_failed} of {len(self.items)} batch input(s) failed; "
                f"first: input {first.index}: "
                f"{first.error_type}: {first.error}"
            )


# ---------------------------------------------------------------------------
# building translators through the cache
# ---------------------------------------------------------------------------


def direction_of(name: str):
    from repro.passes.schedule import Direction

    return {"r2l": Direction.R2L, "l2r": Direction.L2R, "auto": "auto"}[name]


def build_batch_translator(
    spec: WorkerSpec,
    metrics=None,
    tracer=None,
):
    """Build (or cache-rehydrate) the translator a :class:`WorkerSpec`
    describes, and stamp the spec onto it for later fan-out."""
    from repro.buildcache import BuildCache
    from repro.core import Linguist
    from repro.grammars import scanner_and_library

    scanner_spec, library = scanner_and_library(spec.grammar_name)
    if scanner_spec is None:
        raise EvaluationError(
            f"no shipped scanner for grammar {spec.grammar_name!r}; "
            "batch translation needs a scanner specification"
        )
    cache = BuildCache(spec.cache_dir)
    linguist = Linguist(
        spec.source,
        filename=spec.filename,
        first_direction=direction_of(spec.direction),
        tracer=tracer,
        metrics=metrics,
        cache=cache,
    )
    translator = linguist.make_translator(
        scanner_spec, library=library, backend=spec.backend
    )
    translator.spawn_spec = spec
    return translator


def build_worker_translator(spec: WorkerSpec, metrics=None, tracer=None):
    """Hydrate a worker's translator: plane attach first, cache second.

    The zero-copy path (:func:`repro.buildcache.shm.attach_translator`)
    reads every artifact out of the shared segment named by
    ``spec.shm_plane`` — no disk, no unpickle of cache entries, no
    NFA/LALR/plan reconstruction.  Any :class:`~repro.errors.PlaneError`
    (segment gone, corrupt frame) degrades to the classic build-cache
    rehydration so a worker always comes up.
    """
    if spec.shm_plane:
        from repro.buildcache.shm import attach_translator

        try:
            return attach_translator(spec, metrics=metrics, tracer=tracer)
        except PlaneError:
            if metrics is not None:
                metrics.counter("batch.shm.attach_fallback").inc()
    return build_batch_translator(spec, metrics=metrics, tracer=tracer)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
#
# The worker lifecycle itself lives in repro.serve.workers (WorkerHandle
# + worker_main): the serve daemon and the batch driver share one
# supervised-subprocess implementation, so a batch worker and a serve
# worker are the same code path producing byte-identical results.


def _item_from_tuple(data: Tuple[Any, ...]) -> BatchItem:
    index, ok, attrs, n_passes, error_type, error, seconds = data
    return BatchItem(
        index=index,
        ok=ok,
        result=EvaluationResult(attrs, n_passes) if ok else None,
        error_type=error_type,
        error=error,
        seconds=seconds,
    )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


def run_batch(
    translator,
    texts: Sequence[str],
    jobs: int = 1,
    metrics=None,
    tracer=None,
    timeout: Optional[float] = None,
    use_shm: bool = True,
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
) -> BatchReport:
    """Translate ``texts`` through ``translator``; see
    :meth:`repro.core.Translator.translate_many`.

    ``timeout`` (seconds) bounds each input.  Deadlines are enforced by
    killing the worker process that holds the hung input, so a timeout
    requires the supervised-worker path: with ``jobs <= 1`` and a
    timeout the batch still runs through one supervised subprocess
    (same results, enforceable deadline) rather than in-process.

    ``use_shm=False`` skips the shared-memory artifact plane (workers
    rehydrate from the build cache as before); ``pipeline_depth`` caps
    the inputs in flight per worker (ignored — collapsed to 1 — under a
    timeout, so a queued input's deadline clock never runs while its
    predecessor executes).
    """
    texts = list(texts)
    started = time.perf_counter()
    if tracer is not None:
        tracer.instant(
            "batch.start", cat="batch", inputs=len(texts), jobs=jobs
        )
    interrupted = False
    if jobs > 1 or timeout is not None:
        spec = getattr(translator, "spawn_spec", None)
        if spec is None:
            raise EvaluationError(
                "supervised batch execution (jobs > 1, or timeout=) needs a "
                "worker spec: build the translator via "
                "repro.batch.build_batch_translator (or the `repro batch` "
                "CLI) so workers know how to reconstruct it"
            )
        plane = None
        if use_shm:
            try:
                from repro.buildcache.shm import (
                    export_translator_plane,
                    install_signal_cleanup,
                )

                install_signal_cleanup()
                plane = export_translator_plane(
                    translator, metrics=metrics, tracer=tracer
                )
                spec = dataclasses.replace(spec, shm_plane=plane.name)
            except (PlaneError, ReproError):
                if metrics is not None:
                    metrics.counter("batch.shm.export_failed").inc()
                plane = None
        try:
            items, interrupted = _run_supervised(
                spec,
                texts,
                max(1, jobs),
                timeout,
                metrics,
                max(1, pipeline_depth),
            )
        finally:
            # Guaranteed unlink on every exit path (normal, Ctrl-C,
            # raise); SIGTERM/atexit are covered by the shm registry.
            if plane is not None:
                plane.unlink()
    else:
        seq_spec = getattr(translator, "spawn_spec", None)
        items = _run_sequential(
            translator, texts,
            memo_dir=getattr(seq_spec, "memo_dir", None),
        )
    report = BatchReport(
        items=items,
        jobs=max(1, jobs),
        seconds=time.perf_counter() - started,
        interrupted=interrupted,
    )
    if metrics is not None:
        metrics.counter("batch.inputs").inc(len(texts))
        metrics.counter("batch.ok").inc(report.n_ok)
        metrics.counter("batch.failed").inc(report.n_failed)
        metrics.gauge("batch.jobs").set(report.jobs)
        metrics.gauge("batch.seconds").set(report.seconds)
        if interrupted:
            metrics.counter("batch.interrupted").inc()
        for item in items:
            metrics.histogram("batch.item.seconds").observe(item.seconds)
            if item.error_type == "TranslationTimeout":
                metrics.counter("batch.timeouts").inc()
    if tracer is not None:
        for item in items:
            tracer.instant(
                "batch.item",
                cat="batch",
                index=item.index,
                ok=item.ok,
                seconds=item.seconds,
                error=item.error_type,
            )
        tracer.instant(
            "batch.done",
            cat="batch",
            ok=report.n_ok,
            failed=report.n_failed,
            seconds=report.seconds,
        )
    return report


def _run_sequential(
    translator, texts: Sequence[str], memo_dir: Optional[str] = None
) -> List[BatchItem]:
    items: List[BatchItem] = []
    for index, text in enumerate(texts):
        t0 = time.perf_counter()
        try:
            result = translator.translate(text, memo_dir=memo_dir)
        except Exception as exc:
            items.append(
                BatchItem(
                    index=index,
                    ok=False,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    seconds=time.perf_counter() - t0,
                )
            )
        else:
            items.append(
                BatchItem(
                    index=index,
                    ok=True,
                    result=result,
                    seconds=time.perf_counter() - t0,
                )
            )
    return items


def _batch_mp_context() -> Optional[str]:
    """The multiprocessing start method for batch workers.

    POSIX hosts use a **forkserver**: workers fork from a small, clean
    server process instead of the (threaded) driver, so a fork can
    never snapshot a driver thread mid-lock, and repeated restarts
    don't re-run module imports.  The worker's ``REPRO_*`` environment
    is replayed from a per-incarnation snapshot (see
    :func:`repro.serve.workers.worker_main`), so the frozen forkserver
    environment is not observable.

    Forkserver workers re-import the host's ``__main__`` module; when
    that module cannot be re-imported — a ``python - <<EOF`` script, a
    REPL, an embedded interpreter whose ``__main__`` has no real file —
    batch falls back to plain ``fork``, which never touches
    ``__main__``.
    """
    if os.name != "posix":
        return None  # WorkerHandle picks the platform default (spawn)
    main_module = sys.modules.get("__main__")
    main_spec = getattr(main_module, "__spec__", None)
    if main_spec is None or getattr(main_spec, "name", None) is None:
        main_file = getattr(main_module, "__file__", None)
        if main_file is None or not os.path.exists(main_file):
            return "fork"
    try:
        multiprocessing.get_context("forkserver").set_forkserver_preload(
            ["repro.serve.workers"]
        )
    except (ValueError, RuntimeError):  # pragma: no cover
        pass
    return "forkserver"


def _run_supervised(
    spec: WorkerSpec,
    texts: Sequence[str],
    jobs: int,
    timeout: Optional[float],
    metrics=None,
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
) -> Tuple[List[BatchItem], bool]:
    """Fan inputs across supervised worker subprocesses.

    One driver thread per worker pulls inputs off a shared deque and
    keeps up to ``pipeline_depth`` of them in flight on its
    :class:`~repro.serve.workers.WorkerHandle` (depth 1 under a
    timeout).  A timed-out input is recorded as failed and its worker
    killed and restarted; a crashed worker takes its in-flight inputs
    down — each is re-dispatched once (so inputs merely queued behind
    the culprit complete) before being recorded as failed.  Ctrl-C
    kills the workers and returns whatever finished
    (``interrupted=True``).
    """
    from repro.serve.workers import WorkerHandle

    depth = 1 if timeout is not None else max(1, pipeline_depth)
    mp_context = _batch_mp_context()
    handles = [
        WorkerHandle(
            spec, worker_id=i, metrics=metrics, mp_context=mp_context
        ).start()
        for i in range(jobs)
    ]
    if metrics is not None:
        metrics.gauge("batch.pipeline.depth").set(depth)
    #: (index, text, attempt) triples; attempts count dispatches.
    pending = deque((i, t, 1) for i, t in enumerate(texts))
    done: Dict[int, BatchItem] = {}
    lock = threading.Lock()
    stop = threading.Event()

    def record(item: BatchItem) -> None:
        with lock:
            done[item.index] = item

    def drive(handle: WorkerHandle) -> None:
        #: index -> (text, attempt, t0_perf, deadline_monotonic|None)
        outstanding: Dict[int, Tuple[str, int, float, Optional[float]]] = {}

        def settle_crash(message: str) -> None:
            # The incarnation died with these inputs in flight.  Any of
            # them may be the culprit, so each gets one re-dispatch
            # (innocent queue-mates complete on the retry; a
            # deterministic crasher exhausts its attempts and fails).
            for index in sorted(outstanding):
                text, attempt, t0, _dl = outstanding[index]
                if attempt < _MAX_ATTEMPTS and not stop.is_set():
                    with lock:
                        pending.append((index, text, attempt + 1))
                    if metrics is not None:
                        metrics.counter("batch.pipeline.requeued").inc()
                else:
                    record(
                        BatchItem(
                            index=index,
                            ok=False,
                            error_type="WorkerCrashed",
                            error=message,
                            seconds=time.perf_counter() - t0,
                        )
                    )
            outstanding.clear()

        while not stop.is_set():
            # Top up the in-flight window from the shared queue.
            submit_failed = False
            while len(outstanding) < depth:
                with lock:
                    if not pending:
                        break
                    # Retries run in a window of one: a crashed worker
                    # implicates *every* in-flight input, so pipelining
                    # anything behind (or in front of) a re-dispatched
                    # job would let a second crash exhaust an innocent
                    # queue-mate's attempts.  Isolated, the next crash
                    # blames exactly the culprit.
                    if pending[0][2] > 1 and outstanding:
                        break
                    job = pending.popleft()
                index, text, attempt = job
                try:
                    handle.submit(index, text)
                except WorkerCrashed:
                    with lock:
                        pending.appendleft(job)
                    submit_failed = True
                    break
                outstanding[index] = (
                    text,
                    attempt,
                    time.perf_counter(),
                    None if timeout is None else time.monotonic() + timeout,
                )
                if metrics is not None and len(outstanding) > 1:
                    metrics.counter("batch.pipeline.overlapped").inc()
                if attempt > 1:
                    break  # nothing pipelines behind a retry
            if not outstanding:
                if submit_failed:
                    if stop.is_set():
                        return
                    handle.restart()
                    continue
                with lock:
                    if not pending:
                        return
                continue
            deadline = None
            if timeout is not None:
                deadline = min(
                    dl for *_rest, dl in outstanding.values()
                    if dl is not None
                )
            try:
                answer = handle.next_answer(
                    deadline=deadline, timeout=timeout,
                    cancelled=stop.is_set,
                )
            except TranslationTimeout as exc:
                # Only reachable under a timeout, where depth is 1: the
                # single outstanding input is the hung one.
                hung = min(
                    outstanding, key=lambda i: outstanding[i][3] or 0.0
                )
                text, attempt, t0, _dl = outstanding.pop(hung)
                record(
                    BatchItem(
                        index=hung,
                        ok=False,
                        error_type="TranslationTimeout",
                        error=str(exc),
                        seconds=time.perf_counter() - t0,
                    )
                )
                if not stop.is_set():
                    handle.restart()  # the old incarnation is wedged
                settle_crash(
                    f"worker {handle.worker_id} was killed after a "
                    "timeout while this input was queued behind the "
                    "hung one"
                )
                continue
            except WorkerCrashed as exc:
                if stop.is_set():
                    return  # shutdown, not a verdict on these inputs
                settle_crash(str(exc))
                handle.restart()
                continue
            entry = outstanding.pop(answer[0], None)
            if entry is None:
                continue  # stale answer from a pre-restart job: drop it
            record(_item_from_tuple(answer))

    threads = [
        threading.Thread(
            target=drive, args=(handle,), name=f"batch-driver-{i}"
        )
        for i, handle in enumerate(handles)
    ]
    for thread in threads:
        thread.start()
    interrupted = False
    try:
        # join() in a loop so the main thread stays interruptible — the
        # old multiprocessing.Pool path hung in join() on Ctrl-C.
        while any(thread.is_alive() for thread in threads):
            for thread in threads:
                thread.join(timeout=0.1)
    except KeyboardInterrupt:
        interrupted = True
        stop.set()
        # Join the drivers BEFORE kill() discards the queues: a driver
        # may be inside handle.next_answer()'s response_q.get(), and
        # yanking the queue out from under it would crash the thread
        # instead of letting the cancelled callback end it within one
        # poll.
        for thread in threads:
            thread.join(timeout=5.0)
        for handle in handles:
            handle.kill()
    finally:
        for handle in handles:
            handle.stop(grace=0.5)
    return sorted(done.values(), key=lambda item: item.index), interrupted
