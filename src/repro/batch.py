"""Parallel batch translation over the persistent build cache.

The paper's economics (§V) — expensive once-per-grammar build, cheap
streaming per-input translation — invite exactly one scaling move for
serving many inputs: **warm the artifact cache once, then fan the
independent inputs out across worker processes that rehydrate from the
cache instead of rebuilding**.  This module is that batch driver:

* :func:`build_batch_translator` constructs a
  :class:`~repro.core.Translator` for a shipped grammar *through* a
  :class:`~repro.buildcache.BuildCache` and records the recipe
  (:class:`WorkerSpec`) workers need to reconstruct it;
* :func:`run_batch` (surfaced as
  :meth:`repro.core.Translator.translate_many` and the ``repro batch``
  CLI) maps inputs over a ``multiprocessing`` pool with **per-input
  isolation** — one failed input is reported in its
  :class:`BatchItem` while every other input completes;
* telemetry lands in the ``batch.*`` counters/gauges and ``batch.*``
  trace instants (see ``docs/performance.md``).

Sequential (``jobs <= 1``) and parallel executions produce identical
results; the differential suite pins that down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError, ReproError
from repro.evalgen.runtime import EvaluationResult

#: Worker-side translator, built once per process by :func:`_worker_init`.
_WORKER_TRANSLATOR = None


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild the translator.

    Deliberately tiny and picklable: the *source text* and knobs, never
    live objects — workers rehydrate the expensive artifacts from the
    on-disk build cache at ``cache_dir`` (a cold worker would rebuild
    and re-seal them, so correctness never depends on cache state).
    """

    source: str
    filename: str
    grammar_name: str
    direction: str  # "r2l" | "l2r" | "auto"
    cache_dir: str
    backend: str = "generated"


@dataclass
class BatchItem:
    """Outcome of one input: a result or an isolated failure."""

    index: int
    ok: bool
    result: Optional[EvaluationResult] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    seconds: float = 0.0


@dataclass
class BatchReport:
    """Outcome of a whole batch, in input order."""

    items: List[BatchItem] = field(default_factory=list)
    jobs: int = 1
    seconds: float = 0.0

    @property
    def n_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    def failures(self) -> List[BatchItem]:
        return [item for item in self.items if not item.ok]

    def raise_if_failed(self) -> None:
        if not self.ok:
            first = self.failures()[0]
            raise EvaluationError(
                f"{self.n_failed} of {len(self.items)} batch input(s) failed; "
                f"first: input {first.index}: "
                f"{first.error_type}: {first.error}"
            )


# ---------------------------------------------------------------------------
# building translators through the cache
# ---------------------------------------------------------------------------


def direction_of(name: str):
    from repro.passes.schedule import Direction

    return {"r2l": Direction.R2L, "l2r": Direction.L2R, "auto": "auto"}[name]


def build_batch_translator(
    spec: WorkerSpec,
    metrics=None,
    tracer=None,
):
    """Build (or cache-rehydrate) the translator a :class:`WorkerSpec`
    describes, and stamp the spec onto it for later fan-out."""
    from repro.buildcache import BuildCache
    from repro.core import Linguist
    from repro.grammars import scanner_and_library

    scanner_spec, library = scanner_and_library(spec.grammar_name)
    if scanner_spec is None:
        raise EvaluationError(
            f"no shipped scanner for grammar {spec.grammar_name!r}; "
            "batch translation needs a scanner specification"
        )
    cache = BuildCache(spec.cache_dir)
    linguist = Linguist(
        spec.source,
        filename=spec.filename,
        first_direction=direction_of(spec.direction),
        tracer=tracer,
        metrics=metrics,
        cache=cache,
    )
    translator = linguist.make_translator(
        scanner_spec, library=library, backend=spec.backend
    )
    translator.spawn_spec = spec
    return translator


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_init(spec: WorkerSpec) -> None:
    """Pool initializer: rehydrate the translator from the build cache
    (once per worker process)."""
    global _WORKER_TRANSLATOR
    _WORKER_TRANSLATOR = build_batch_translator(spec)


def _worker_translate(job: Tuple[int, str]) -> Tuple[Any, ...]:
    """Translate one input inside a worker, isolating any failure."""
    index, text = job
    started = time.perf_counter()
    try:
        result = _WORKER_TRANSLATOR.translate(text)
    except Exception as exc:  # per-input isolation: report, don't kill the pool
        return (
            index,
            False,
            None,
            0,
            type(exc).__name__,
            str(exc),
            time.perf_counter() - started,
        )
    return (
        index,
        True,
        result.root_attrs,
        result.n_passes,
        None,
        None,
        time.perf_counter() - started,
    )


def _item_from_tuple(data: Tuple[Any, ...]) -> BatchItem:
    index, ok, attrs, n_passes, error_type, error, seconds = data
    return BatchItem(
        index=index,
        ok=ok,
        result=EvaluationResult(attrs, n_passes) if ok else None,
        error_type=error_type,
        error=error,
        seconds=seconds,
    )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


def run_batch(
    translator,
    texts: Sequence[str],
    jobs: int = 1,
    metrics=None,
    tracer=None,
) -> BatchReport:
    """Translate ``texts`` through ``translator``; see
    :meth:`repro.core.Translator.translate_many`."""
    texts = list(texts)
    started = time.perf_counter()
    if tracer is not None:
        tracer.instant(
            "batch.start", cat="batch", inputs=len(texts), jobs=jobs
        )
    if jobs > 1:
        items = _run_parallel(translator, texts, jobs)
    else:
        items = _run_sequential(translator, texts)
    report = BatchReport(
        items=items, jobs=max(1, jobs), seconds=time.perf_counter() - started
    )
    if metrics is not None:
        metrics.counter("batch.inputs").inc(len(texts))
        metrics.counter("batch.ok").inc(report.n_ok)
        metrics.counter("batch.failed").inc(report.n_failed)
        metrics.gauge("batch.jobs").set(report.jobs)
        metrics.gauge("batch.seconds").set(report.seconds)
        for item in items:
            metrics.histogram("batch.item.seconds").observe(item.seconds)
    if tracer is not None:
        for item in items:
            tracer.instant(
                "batch.item",
                cat="batch",
                index=item.index,
                ok=item.ok,
                seconds=item.seconds,
                error=item.error_type,
            )
        tracer.instant(
            "batch.done",
            cat="batch",
            ok=report.n_ok,
            failed=report.n_failed,
            seconds=report.seconds,
        )
    return report


def _run_sequential(translator, texts: Sequence[str]) -> List[BatchItem]:
    items: List[BatchItem] = []
    for index, text in enumerate(texts):
        t0 = time.perf_counter()
        try:
            result = translator.translate(text)
        except Exception as exc:
            items.append(
                BatchItem(
                    index=index,
                    ok=False,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    seconds=time.perf_counter() - t0,
                )
            )
        else:
            items.append(
                BatchItem(
                    index=index,
                    ok=True,
                    result=result,
                    seconds=time.perf_counter() - t0,
                )
            )
    return items


def _run_parallel(translator, texts: Sequence[str], jobs: int) -> List[BatchItem]:
    import multiprocessing

    spec = translator.spawn_spec
    if spec is None:
        raise EvaluationError(
            "translate_many(jobs > 1) needs a worker spec: build the "
            "translator via repro.batch.build_batch_translator (or the "
            "`repro batch` CLI) so workers know how to rehydrate it "
            "from the build cache"
        )
    # Make sure the artifacts the workers will rehydrate are sealed on
    # disk (they are, unless the cache was cleared since construction —
    # in which case workers rebuild once per process; slower, never wrong).
    with multiprocessing.Pool(
        processes=jobs, initializer=_worker_init, initargs=(spec,)
    ) as pool:
        raw = pool.map(_worker_translate, list(enumerate(texts)))
    items = [_item_from_tuple(data) for data in raw]
    items.sort(key=lambda item: item.index)
    return items
