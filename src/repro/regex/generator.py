"""The scanner generator's public API.

A :class:`ScannerSpec` is "a set of regular expressions" (§V); calling
:meth:`ScannerSpec.generate` runs regex-parse → Thompson NFA → subset
construction → minimization and returns a ready :class:`Scanner` whose
tables can also be rendered as source text (the original emitted its
scanner tables as data modules linked into overlay 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.regex.ast import ALPHABET_SIZE, Regex
from repro.regex.dfa import DFA, determinize, minimize
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse_regex
from repro.regex.scanner import Scanner
from repro.util.nametable import NameTable


@dataclass
class ScannerSpec:
    """Declarative description of a lexical language."""

    rules: List[Tuple[str, Regex]] = field(default_factory=list)
    skip: Set[str] = field(default_factory=set)
    keywords: Dict[str, str] = field(default_factory=dict)
    keyword_kinds: Set[str] = field(default_factory=lambda: {"IDENT"})
    intern_kinds: Set[str] = field(default_factory=set)

    def rule(self, kind: str, pattern: str, skip: bool = False, intern: bool = False) -> "ScannerSpec":
        """Add a token rule given as regex source text.  Earlier rules win ties."""
        self.rules.append((kind, parse_regex(pattern)))
        if skip:
            self.skip.add(kind)
        if intern:
            self.intern_kinds.add(kind)
        return self

    def keyword(self, lexeme: str, kind: Optional[str] = None) -> "ScannerSpec":
        """Declare ``lexeme`` a keyword (token kind defaults to the lexeme)."""
        self.keywords[lexeme] = kind if kind is not None else lexeme
        return self

    def token_kinds(self) -> List[str]:
        """All non-skip token kinds this spec can produce."""
        kinds = [k for k, _ in self.rules if k not in self.skip]
        kinds.extend(v for v in self.keywords.values() if v not in kinds)
        return kinds

    def generate(self, names: Optional[NameTable] = None, filename: str = "<input>") -> Scanner:
        return ScannerGenerator(self).generate(names=names, filename=filename)


class ScannerGenerator:
    """Compiles a :class:`ScannerSpec` into DFA tables and a scanner."""

    def __init__(self, spec: ScannerSpec, dfa: Optional[DFA] = None):
        #: ``dfa`` pre-seeds the pipeline with an already-built (e.g.
        #: cache-rehydrated) DFA, skipping NFA construction, subset
        #: construction, and minimization entirely.
        self.spec = spec
        self._dfa: Optional[DFA] = dfa

    def build_tables(self) -> DFA:
        """Run the full pipeline and cache the minimized DFA."""
        if self._dfa is None:
            nfa = build_nfa(self.spec.rules)
            self._dfa = minimize(determinize(nfa))
        return self._dfa

    def generate(self, names: Optional[NameTable] = None, filename: str = "<input>") -> Scanner:
        dfa = self.build_tables()
        return Scanner(
            dfa,
            skip=set(self.spec.skip),
            keywords=dict(self.spec.keywords),
            keyword_kinds=set(self.spec.keyword_kinds),
            intern_kinds=set(self.spec.intern_kinds),
            names=names,
            filename=filename,
        )

    def render_tables(self, module_name: str = "scanner_tables") -> str:
        """Render the DFA as a Python data module (the "generated scanner
        tables" artifact of overlay 1)."""
        dfa = self.build_tables()
        lines = [
            f'"""Generated scanner tables: {module_name}."""',
            "",
            f"N_STATES = {dfa.n_states}",
            f"START = {dfa.start}",
            f"ALPHABET_SIZE = {ALPHABET_SIZE}",
            f"ACCEPTS = {dfa.accepts!r}",
            f"TRANS = {dfa.trans!r}",
            "",
        ]
        return "\n".join(lines)
