"""Recursive-descent parser for the regular-expression notation.

Supported syntax::

    a            literal character
    \\n \\t \\r \\\\  escapes (plus \\d \\w \\s \\S classes and punctuation escapes)
    [a-z_$]      character class, ranges and singles; [^...] negates
    .            any character except newline
    r1r2         concatenation
    r1|r2        alternation
    r*  r+  r?   repetition
    (r)          grouping

This is the notation the scanner-generator input uses.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.errors import ScanError
from repro.regex.ast import (
    ALPHABET_SIZE,
    Alt,
    CharSet,
    Concat,
    Empty,
    Opt,
    Plus,
    Regex,
    Star,
    char_code,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
}

_DIGIT = frozenset(range(ord("0"), ord("9") + 1))
_WORD = (
    frozenset(range(ord("a"), ord("z") + 1))
    | frozenset(range(ord("A"), ord("Z") + 1))
    | _DIGIT
    | frozenset({ord("_")})
)
_SPACE = frozenset(ord(c) for c in " \t\r\n\f\v")

_CLASS_ESCAPES = {
    "d": _DIGIT,
    "w": _WORD,
    "s": _SPACE,
}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self) -> str:
        ch = self.peek()
        if not ch:
            raise ScanError(f"unexpected end of regex: {self.text!r}")
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        got = self.take()
        if got != ch:
            raise ScanError(
                f"expected {ch!r} at offset {self.pos - 1} of regex {self.text!r}, got {got!r}"
            )

    # regex := alt
    # alt := concat ('|' concat)*
    # concat := repeat*
    # repeat := atom ('*'|'+'|'?')*
    # atom := char | class | '(' alt ')' | '.'

    def parse(self) -> Regex:
        node = self.alt()
        if self.pos != len(self.text):
            raise ScanError(
                f"trailing garbage at offset {self.pos} of regex {self.text!r}"
            )
        return node

    def alt(self) -> Regex:
        node = self.concat()
        while self.peek() == "|":
            self.take()
            node = Alt(node, self.concat())
        return node

    def concat(self) -> Regex:
        node: Regex = Empty()
        first = True
        while self.peek() and self.peek() not in "|)":
            piece = self.repeat()
            node = piece if first else Concat(node, piece)
            first = False
        return node

    def repeat(self) -> Regex:
        node = self.atom()
        while self.peek() and self.peek() in "*+?":
            op = self.take()
            if op == "*":
                node = Star(node)
            elif op == "+":
                node = Plus(node)
            else:
                node = Opt(node)
        return node

    def atom(self) -> Regex:
        ch = self.take()
        if ch == "(":
            node = self.alt()
            self.expect(")")
            return node
        if ch == "[":
            return self.char_class()
        if ch == ".":
            return CharSet.any_char()
        if ch == "\\":
            return CharSet(self.escape())
        if ch in "*+?|)":
            raise ScanError(f"misplaced {ch!r} in regex {self.text!r}")
        return CharSet(frozenset({char_code(ch)}))

    def escape(self) -> FrozenSet[int]:
        ch = self.take()
        if ch in _CLASS_ESCAPES:
            return _CLASS_ESCAPES[ch]
        if ch == "S":
            return frozenset(range(ALPHABET_SIZE)) - _SPACE
        if ch == "D":
            return frozenset(range(ALPHABET_SIZE)) - _DIGIT
        if ch == "W":
            return frozenset(range(ALPHABET_SIZE)) - _WORD
        if ch in _ESCAPES:
            return frozenset({ord(_ESCAPES[ch])})
        # punctuation escape: \[ \] \( \) \\ \. \* \+ \? \| \- \$ ...
        return frozenset({char_code(ch)})

    def char_class(self) -> Regex:
        negate = False
        if self.peek() == "^":
            self.take()
            negate = True
        codes: set = set()
        if self.peek() == "]":  # ']' first is literal
            self.take()
            codes.add(ord("]"))
        while True:
            ch = self.take()
            if ch == "]":
                break
            if ch == "\\":
                esc = self.escape()
                if len(esc) == 1 and self.peek() == "-" and self.text[self.pos + 1 : self.pos + 2] != "]":
                    (lo,) = esc
                    self.take()  # '-'
                    hi_ch = self.take()
                    if hi_ch == "\\":
                        (hi,) = self.escape()
                    else:
                        hi = char_code(hi_ch)
                    codes.update(range(lo, hi + 1))
                else:
                    codes.update(esc)
                continue
            if self.peek() == "-" and self.text[self.pos + 1 : self.pos + 2] not in ("]", ""):
                self.take()  # '-'
                hi_ch = self.take()
                if hi_ch == "\\":
                    (hi,) = self.escape()
                else:
                    hi = char_code(hi_ch)
                codes.update(range(char_code(ch), hi + 1))
            else:
                codes.add(char_code(ch))
        result = frozenset(codes)
        if negate:
            result = frozenset(range(ALPHABET_SIZE)) - result
        return CharSet(result)


def parse_regex(text: str) -> Regex:
    """Parse regular-expression ``text`` into a :class:`Regex` AST."""
    return _Parser(text).parse()
