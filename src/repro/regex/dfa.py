"""Subset construction and Hopcroft minimization for scanner DFAs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.regex.ast import ALPHABET_SIZE
from repro.regex.nfa import NFA

#: Transition-table entry meaning "no move" (dead).
DEAD = -1


@dataclass
class DFA:
    """A dense-table DFA over the scanner alphabet.

    ``trans`` is a flat list of ``n_states * ALPHABET_SIZE`` entries;
    ``accepts[s]`` is the winning ``(priority, tag)`` or ``None``.
    """

    n_states: int
    start: int
    trans: List[int]
    accepts: List[Optional[Tuple[int, str]]]

    def step(self, state: int, code: int) -> int:
        return self.trans[state * ALPHABET_SIZE + code]

    def accept_tag(self, state: int) -> Optional[str]:
        acc = self.accepts[state]
        return acc[1] if acc else None

    def table_bytes(self) -> int:
        """Size of the transition table at two bytes per entry, the way an
        8086 table-driven scanner would store it."""
        return len(self.trans) * 2


def determinize(nfa: NFA) -> DFA:
    """Subset construction."""
    start_set = nfa.eps_closure({nfa.start})
    index: Dict[FrozenSet[int], int] = {start_set: 0}
    order: List[FrozenSet[int]] = [start_set]
    trans: List[int] = []
    accepts: List[Optional[Tuple[int, str]]] = []
    work = [start_set]
    rows: List[List[int]] = []

    # Precompute, per NFA state, its outgoing (codes, dst) pairs for speed.
    while work:
        current = work.pop(0)
        row = [DEAD] * ALPHABET_SIZE
        # Group target sets by code.
        for code in range(ALPHABET_SIZE):
            moved = nfa.move(current, code)
            if not moved:
                continue
            closed = nfa.eps_closure(moved)
            nxt = index.get(closed)
            if nxt is None:
                nxt = len(order)
                index[closed] = nxt
                order.append(closed)
                work.append(closed)
            row[code] = nxt
        rows.append(row)

    for subset in order:
        accepts.append(nfa.best_accept(subset))
    for row in rows:
        trans.extend(row)
    return DFA(n_states=len(order), start=0, trans=trans, accepts=accepts)


def minimize(dfa: DFA) -> DFA:
    """Hopcroft-style partition refinement.

    Accept states are initially partitioned by their ``(priority, tag)``
    so minimization never merges states that accept different tokens.
    """
    # Initial partition: by accept signature.
    sig_to_block: Dict[object, int] = {}
    block_of = [0] * dfa.n_states
    for s in range(dfa.n_states):
        sig = dfa.accepts[s]
        blk = sig_to_block.get(sig)
        if blk is None:
            blk = len(sig_to_block)
            sig_to_block[sig] = blk
        block_of[s] = blk
    n_blocks = len(sig_to_block)

    changed = True
    while changed:
        changed = False
        # Refine: states in the same block must agree on the block of
        # every successor.
        signature: Dict[Tuple, int] = {}
        new_block_of = [0] * dfa.n_states
        for s in range(dfa.n_states):
            row = dfa.trans[s * ALPHABET_SIZE : (s + 1) * ALPHABET_SIZE]
            sig = (block_of[s],) + tuple(
                block_of[t] if t != DEAD else DEAD for t in row
            )
            blk = signature.get(sig)
            if blk is None:
                blk = len(signature)
                signature[sig] = blk
            new_block_of[s] = blk
        if len(signature) != n_blocks:
            changed = True
            n_blocks = len(signature)
        block_of = new_block_of

    # Build the quotient automaton.  Block ids are renumbered so the
    # start state is 0 and ordering is stable (first-seen order by
    # original state id).
    remap: Dict[int, int] = {}
    order: List[int] = []

    def rep(blk: int) -> int:
        nonlocal remap, order
        new = remap.get(blk)
        if new is None:
            new = len(order)
            remap[blk] = new
            order.append(blk)
        return new

    # Ensure start block is numbered first.
    rep(block_of[dfa.start])
    reps: Dict[int, int] = {}
    for s in range(dfa.n_states):
        blk = block_of[s]
        rep(blk)
        if blk not in reps:
            reps[blk] = s

    n_new = len(order)
    trans = [DEAD] * (n_new * ALPHABET_SIZE)
    accepts: List[Optional[Tuple[int, str]]] = [None] * n_new
    for blk, s in reps.items():
        new_id = remap[blk]
        accepts[new_id] = dfa.accepts[s]
        base = s * ALPHABET_SIZE
        new_base = new_id * ALPHABET_SIZE
        for code in range(ALPHABET_SIZE):
            t = dfa.trans[base + code]
            trans[new_base + code] = remap[block_of[t]] if t != DEAD else DEAD
    return DFA(n_states=n_new, start=0, trans=trans, accepts=accepts)
