"""Scanner generator substrate.

§V: "a program that generates a lexical scanner for a set of regular
expressions".  This package is that program: a regular-expression parser
(:mod:`repro.regex.parser`), Thompson NFA construction
(:mod:`repro.regex.nfa`), subset construction + Hopcroft minimization
(:mod:`repro.regex.dfa`), and a table-driven maximal-munch scanner
interpreter (:mod:`repro.regex.scanner`).  The public entry point is
:class:`repro.regex.generator.ScannerGenerator`.
"""

from repro.regex.ast import (
    Alt,
    CharSet,
    Concat,
    Empty,
    Opt,
    Plus,
    Regex,
    Star,
)
from repro.regex.parser import parse_regex
from repro.regex.nfa import NFA, build_nfa
from repro.regex.dfa import DFA, determinize, minimize
from repro.regex.scanner import Scanner, Token
from repro.regex.generator import ScannerGenerator, ScannerSpec

__all__ = [
    "Alt",
    "CharSet",
    "Concat",
    "Empty",
    "Opt",
    "Plus",
    "Regex",
    "Star",
    "parse_regex",
    "NFA",
    "build_nfa",
    "DFA",
    "determinize",
    "minimize",
    "Scanner",
    "Token",
    "ScannerGenerator",
    "ScannerSpec",
]
