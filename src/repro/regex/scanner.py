"""Table-driven maximal-munch scanner interpreter.

LINGUIST-86's overlay 1 contains "the automatically generated scanner
tables and parser tables and their interpreters".  :class:`Scanner` is
the scanner-table interpreter: it walks the minimized DFA to the longest
match, applies keyword remapping, skips ignorable tokens, and tracks
source coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set

from repro.errors import ScanError
from repro.regex.ast import char_code
from repro.regex.dfa import DEAD, DFA
from repro.util.nametable import NameTable
from repro.errors import SourceLocation


@dataclass(frozen=True)
class Token:
    """One lexeme: kind, text, source location, optional interned name."""

    kind: str
    text: str
    location: SourceLocation
    name_index: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.location.line}:{self.location.column})"


#: Kind used for the synthetic end-of-input token.
EOF = "$eof"


class Scanner:
    """Longest-match scanner over a DFA table.

    Parameters
    ----------
    dfa:
        the (minimized) DFA whose accept tags are token kinds.
    skip:
        token kinds to drop silently (whitespace, comments).
    keywords:
        map from exact lexeme to token kind; applied after a match of a
        kind in ``keyword_kinds`` (usually just the identifier kind).
    intern_kinds:
        kinds whose lexemes are interned in the name table and carried
        on the token as ``name_index`` — the paper's intrinsic
        name-table-index attributes of terminal leaves.
    """

    def __init__(
        self,
        dfa: DFA,
        skip: Optional[Set[str]] = None,
        keywords: Optional[Dict[str, str]] = None,
        keyword_kinds: Optional[Set[str]] = None,
        intern_kinds: Optional[Set[str]] = None,
        names: Optional[NameTable] = None,
        filename: str = "<input>",
    ):
        self.dfa = dfa
        self.skip = skip or set()
        self.keywords = keywords or {}
        self.keyword_kinds = keyword_kinds or {"IDENT"}
        self.intern_kinds = intern_kinds or set()
        self.names = names if names is not None else NameTable()
        self.filename = filename

    def tokens(self, text: str) -> Iterator[Token]:
        """Yield tokens of ``text``, ending with one EOF token."""
        pos = 0
        line = 1
        col = 1
        n = len(text)
        dfa = self.dfa
        while pos < n:
            state = dfa.start
            last_accept: Optional[str] = None
            last_end = pos
            i = pos
            while i < n:
                state = dfa.step(state, char_code(text[i]))
                if state == DEAD:
                    break
                i += 1
                tag = dfa.accept_tag(state)
                if tag is not None:
                    last_accept = tag
                    last_end = i
            if last_accept is None:
                raise ScanError(
                    f"{self.filename}:{line}:{col}: illegal character {text[pos]!r}"
                )
            lexeme = text[pos:last_end]
            loc = SourceLocation(line, col, self.filename)
            # Advance source coordinates over the lexeme.
            newlines = lexeme.count("\n")
            if newlines:
                line += newlines
                col = len(lexeme) - lexeme.rfind("\n")
            else:
                col += len(lexeme)
            pos = last_end
            kind = last_accept
            if kind in self.keyword_kinds and lexeme in self.keywords:
                kind = self.keywords[lexeme]
            if kind in self.skip:
                continue
            name_index = 0
            if kind in self.intern_kinds:
                name_index = self.names.intern(lexeme)
            yield Token(kind, lexeme, loc, name_index)
        yield Token(EOF, "", SourceLocation(line, col, self.filename))

    def scan(self, text: str) -> List[Token]:
        """Scan all of ``text`` into a token list (including EOF)."""
        return list(self.tokens(text))
