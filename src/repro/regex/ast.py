"""Regular-expression abstract syntax.

The alphabet is bytes 0–127 plus a single "other" bucket (code 128) for
any non-ASCII character; LINGUIST-86 inputs are ASCII, and bucketing
keeps DFA rows small the way the original's table-driven scanner did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

#: Code used for every character outside the 7-bit ASCII range.
OTHER = 128

#: Size of the scanner alphabet (ASCII plus the OTHER bucket).
ALPHABET_SIZE = 129


def char_code(ch: str) -> int:
    """Map a character to its alphabet code."""
    cp = ord(ch)
    return cp if cp < 128 else OTHER


class Regex:
    """Base class for regular-expression AST nodes."""

    __slots__ = ()

    def __or__(self, other: "Regex") -> "Regex":
        return Alt(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return Concat(self, other)

    def star(self) -> "Regex":
        return Star(self)

    def plus(self) -> "Regex":
        return Plus(self)

    def opt(self) -> "Regex":
        return Opt(self)


@dataclass(frozen=True)
class Empty(Regex):
    """Matches the empty string (epsilon)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class CharSet(Regex):
    """Matches any single character whose code is in ``codes``."""

    codes: FrozenSet[int]

    def __repr__(self) -> str:
        if len(self.codes) == 1:
            (c,) = self.codes
            return repr(chr(c)) if c != OTHER else "<other>"
        return f"[{len(self.codes)} chars]"

    @staticmethod
    def of(chars: str) -> "CharSet":
        return CharSet(frozenset(char_code(c) for c in chars))

    @staticmethod
    def range(lo: str, hi: str) -> "CharSet":
        return CharSet(frozenset(range(ord(lo), ord(hi) + 1)))

    @staticmethod
    def negated(codes: FrozenSet[int]) -> "CharSet":
        return CharSet(frozenset(range(ALPHABET_SIZE)) - codes)

    @staticmethod
    def any_char() -> "CharSet":
        """``.`` — anything except newline."""
        return CharSet.negated(frozenset({ord("\n")}))


@dataclass(frozen=True)
class Concat(Regex):
    left: Regex
    right: Regex

    def __repr__(self) -> str:
        return f"({self.left!r}{self.right!r})"


@dataclass(frozen=True)
class Alt(Regex):
    left: Regex
    right: Regex

    def __repr__(self) -> str:
        return f"({self.left!r}|{self.right!r})"


@dataclass(frozen=True)
class Star(Regex):
    body: Regex

    def __repr__(self) -> str:
        return f"({self.body!r})*"


@dataclass(frozen=True)
class Plus(Regex):
    body: Regex

    def __repr__(self) -> str:
        return f"({self.body!r})+"


@dataclass(frozen=True)
class Opt(Regex):
    body: Regex

    def __repr__(self) -> str:
        return f"({self.body!r})?"


def literal(text: str) -> Regex:
    """Regex matching exactly ``text``."""
    if not text:
        return Empty()
    node: Regex = CharSet.of(text[0])
    for ch in text[1:]:
        node = Concat(node, CharSet.of(ch))
    return node
