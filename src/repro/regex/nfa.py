"""Thompson construction: regex AST -> nondeterministic finite automaton."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.regex.ast import Alt, CharSet, Concat, Empty, Opt, Plus, Regex, Star


@dataclass
class NFA:
    """An NFA with epsilon moves.

    ``char_edges[s]`` is a list of ``(codes, target)`` pairs;
    ``eps_edges[s]`` a list of targets.  ``accepts[s]`` carries the
    ``(priority, tag)`` of the rule a state accepts for (lower priority
    wins ties, matching rule-declaration order in the scanner spec).
    """

    start: int = 0
    n_states: int = 0
    char_edges: Dict[int, List[Tuple[FrozenSet[int], int]]] = field(default_factory=dict)
    eps_edges: Dict[int, List[int]] = field(default_factory=dict)
    accepts: Dict[int, Tuple[int, str]] = field(default_factory=dict)

    def new_state(self) -> int:
        s = self.n_states
        self.n_states += 1
        return s

    def add_char_edge(self, src: int, codes: FrozenSet[int], dst: int) -> None:
        self.char_edges.setdefault(src, []).append((codes, dst))

    def add_eps_edge(self, src: int, dst: int) -> None:
        self.eps_edges.setdefault(src, []).append(dst)

    def eps_closure(self, states: Set[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` by epsilon moves."""
        stack = list(states)
        seen = set(states)
        while stack:
            s = stack.pop()
            for t in self.eps_edges.get(s, ()):
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return frozenset(seen)

    def move(self, states: FrozenSet[int], code: int) -> Set[int]:
        """States reachable from ``states`` on input ``code`` (no closure)."""
        out: Set[int] = set()
        for s in states:
            for codes, dst in self.char_edges.get(s, ()):
                if code in codes:
                    out.add(dst)
        return out

    def best_accept(self, states: FrozenSet[int]) -> Optional[Tuple[int, str]]:
        """The winning ``(priority, tag)`` among ``states``, if any."""
        best: Optional[Tuple[int, str]] = None
        for s in states:
            acc = self.accepts.get(s)
            if acc is not None and (best is None or acc[0] < best[0]):
                best = acc
        return best


def _build(nfa: NFA, node: Regex) -> Tuple[int, int]:
    """Add states for ``node``; return its (entry, exit) states."""
    if isinstance(node, Empty):
        s = nfa.new_state()
        t = nfa.new_state()
        nfa.add_eps_edge(s, t)
        return s, t
    if isinstance(node, CharSet):
        s = nfa.new_state()
        t = nfa.new_state()
        nfa.add_char_edge(s, node.codes, t)
        return s, t
    if isinstance(node, Concat):
        s1, t1 = _build(nfa, node.left)
        s2, t2 = _build(nfa, node.right)
        nfa.add_eps_edge(t1, s2)
        return s1, t2
    if isinstance(node, Alt):
        s = nfa.new_state()
        t = nfa.new_state()
        s1, t1 = _build(nfa, node.left)
        s2, t2 = _build(nfa, node.right)
        nfa.add_eps_edge(s, s1)
        nfa.add_eps_edge(s, s2)
        nfa.add_eps_edge(t1, t)
        nfa.add_eps_edge(t2, t)
        return s, t
    if isinstance(node, Star):
        s = nfa.new_state()
        t = nfa.new_state()
        s1, t1 = _build(nfa, node.body)
        nfa.add_eps_edge(s, s1)
        nfa.add_eps_edge(s, t)
        nfa.add_eps_edge(t1, s1)
        nfa.add_eps_edge(t1, t)
        return s, t
    if isinstance(node, Plus):
        s1, t1 = _build(nfa, node.body)
        t = nfa.new_state()
        nfa.add_eps_edge(t1, s1)
        nfa.add_eps_edge(t1, t)
        return s1, t
    if isinstance(node, Opt):
        s = nfa.new_state()
        t = nfa.new_state()
        s1, t1 = _build(nfa, node.body)
        nfa.add_eps_edge(s, s1)
        nfa.add_eps_edge(s, t)
        nfa.add_eps_edge(t1, t)
        return s, t
    raise TypeError(f"unknown regex node {node!r}")


def build_nfa(rules: List[Tuple[str, Regex]]) -> NFA:
    """Build one NFA accepting the union of all ``(tag, regex)`` rules.

    Rule priority is declaration order: when two rules match the same
    longest lexeme the earlier rule wins (standard lex semantics).
    """
    nfa = NFA()
    start = nfa.new_state()
    nfa.start = start
    for priority, (tag, node) in enumerate(rules):
        s, t = _build(nfa, node)
        nfa.add_eps_edge(start, s)
        nfa.accepts[t] = (priority, tag)
    return nfa
