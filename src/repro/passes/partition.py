"""Pass assignment: which attribute is evaluated in which alternating pass.

Monotone deferral to a fixpoint:  every non-intrinsic attribute starts
in pass 1; each round simulates every production at every pass in use;
any binding that cannot be scheduled bumps its target attribute to the
next pass.  Because pass numbers only ever increase and are bounded,
the loop terminates — either at a consistent assignment (the grammar is
alternating-pass evaluable in ``n_passes`` passes) or by exceeding the
bound, in which case :class:`~repro.errors.PassError` reports the
attributes that kept escaping (these are the grammar's zig-zag
dependencies, unbounded in tree depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ag.copyrules import Binding
from repro.ag.model import AttrKind, AttributeGrammar, Production
from repro.errors import PassError
from repro.passes.schedule import (
    AttrId,
    Direction,
    INTRINSIC_PASS,
    ScheduleResult,
    direction_of_pass,
    schedule_production,
)

#: Default bound on pass count; real grammars use 2–6 passes (the paper's
#: own grammar needs 4), so hitting this means "not pass evaluable".
DEFAULT_MAX_PASSES = 16


@dataclass
class PassAssignment:
    """The result of the evaluability analysis."""

    grammar: AttributeGrammar
    first_direction: Direction
    attr_pass: Dict[AttrId, int]
    n_passes: int
    #: Cached consistent schedules: (production index, pass) -> result.
    schedules: Dict[Tuple[int, int], ScheduleResult] = field(default_factory=dict)

    def direction(self, pass_k: int) -> Direction:
        return direction_of_pass(pass_k, self.first_direction)

    def pass_of(self, symbol: str, attr: str) -> int:
        return self.attr_pass[(symbol, attr)]

    def attributes_of_pass(self, pass_k: int) -> List[AttrId]:
        return sorted(a for a, p in self.attr_pass.items() if p == pass_k)

    def schedule(self, prod: Production, pass_k: int) -> ScheduleResult:
        """The (cached) consistent schedule of ``prod`` for ``pass_k``."""
        key = (prod.index, pass_k)
        if key not in self.schedules:
            result = schedule_production(
                self.grammar, prod, pass_k, self.direction(pass_k), self.attr_pass
            )
            assert result.ok, (
                f"internal: inconsistent pass assignment for production "
                f"{prod.index} pass {pass_k}"
            )
            self.schedules[key] = result
        return self.schedules[key]


def assign_passes(
    ag: AttributeGrammar,
    first_direction: Direction = Direction.R2L,
    max_passes: int = DEFAULT_MAX_PASSES,
) -> PassAssignment:
    """Run the evaluability analysis.

    ``first_direction`` defaults to right-to-left — the paper's own
    choice ("LINGUIST-86 itself uses the first method": the parser
    emits nodes bottom-up, so the first evaluation pass is R-to-L).
    Raises :class:`PassError` if the grammar is not evaluable within
    ``max_passes`` alternating passes.
    """
    attr_pass: Dict[AttrId, int] = {}
    for sym in ag.symbols.values():
        for attr in sym.attributes.values():
            if attr.kind is AttrKind.INTRINSIC:
                attr_pass[(sym.name, attr.name)] = INTRINSIC_PASS
            else:
                attr_pass[(sym.name, attr.name)] = 1

    if not attr_pass:
        assignment = PassAssignment(ag, first_direction, {}, 0)
        return assignment

    from repro.ag.copyrules import production_bindings

    while True:
        bumped: Set[AttrId] = set()
        n_passes = max(attr_pass.values()) if attr_pass else 1
        n_passes = max(n_passes, 1)
        for prod in ag.productions:
            # Only simulate the passes this production defines something
            # in — a pass with no pending bindings trivially succeeds.
            target_passes = {
                attr_pass[(b.target.symbol, b.target.attr_name)]
                for b in production_bindings(prod)
            }
            for pass_k in sorted(target_passes):
                if not 1 <= pass_k <= n_passes:
                    continue
                result = schedule_production(
                    ag, prod, pass_k, direction_of_pass(pass_k, first_direction), attr_pass
                )
                for binding in result.failed:
                    bumped.add((binding.target.symbol, binding.target.attr_name))
        if not bumped:
            break
        overflow: List[AttrId] = []
        for attr_id in bumped:
            attr_pass[attr_id] += 1
            if attr_pass[attr_id] > max_passes:
                overflow.append(attr_id)
        if overflow:
            names = ", ".join(f"{s}.{a}" for s, a in sorted(overflow))
            raise PassError(
                f"attribute grammar {ag.name!r} is not evaluable in "
                f"{max_passes} alternating passes (first pass "
                f"{first_direction.value}); attributes that keep escaping: {names}"
            )

    n_passes = max((p for p in attr_pass.values()), default=0)
    assignment = PassAssignment(ag, first_direction, attr_pass, n_passes)

    # Record the consistent schedules and stamp pass numbers on functions.
    for prod in ag.productions:
        for pass_k in range(1, n_passes + 1):
            assignment.schedule(prod, pass_k)
        for func in prod.functions:
            func.pass_number = max(
                attr_pass[(t.symbol, t.attr_name)] for t in func.targets
            )
    return assignment


def choose_first_direction(
    ag: AttributeGrammar, max_passes: int = DEFAULT_MAX_PASSES
) -> PassAssignment:
    """Try both first directions and return the assignment with fewer
    passes (ties favor R-to-L, the paper's bottom-up-parser default)."""
    best: Optional[PassAssignment] = None
    for first in (Direction.R2L, Direction.L2R):
        try:
            candidate = assign_passes(ag, first, max_passes)
        except PassError:
            continue
        if best is None or candidate.n_passes < best.n_passes:
            best = candidate
    if best is None:
        raise PassError(
            f"attribute grammar {ag.name!r} is not alternating-pass evaluable "
            f"in either direction within {max_passes} passes"
        )
    return best
