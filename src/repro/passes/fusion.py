"""Dependency-driven pass fusion: merge adjacent passes into one traversal.

The paper's §IV economics charge every evaluation pass one full
sequential stream of the APT through two intermediate files.  The
macro-tree-transducer characterization of attributed translations
(PAPERS.md) observes that composing adjacent passes is *statically
decidable*: if the attributes of two adjacent passes can all be
scheduled inside a single production-procedure traversal, the two
streams collapse into one and a whole spool round-trip disappears.

Why only the *first* pair can ever fuse
---------------------------------------

:func:`repro.passes.partition.assign_passes` runs monotone deferral to
a fixpoint, which yields the **least** pass number for every attribute
given a fixed first direction (schedulability of a binding is antitone
in the pass numbers of the other attributes, so no attribute can move
earlier without breaking some production).  Consequently a candidate
fusion of passes *k* and *k+1* **in pass k's direction** is exactly the
assignment the fixpoint already rejected — it can never succeed.  The
one remaining degree of freedom is the direction of the merged pass:

* merge passes 1 and 2 into a single traversal that runs in **pass 2's
  direction** — i.e. relabel every pass-2 attribute into pass 1, flip
  ``first_direction`` to its opposite, and shift every later pass down
  by one;
* all later passes keep both their direction
  (``direction_of_pass(k, new_first) == direction_of_pass(k+1,
  old_first)``) and their availability sets (the merged attributes were
  already all available to them), so only the *merged* pass needs
  re-checking, production by production;
* iterate: the result is again a 2-adjacent-pass situation, so the
  merged pass may swallow the next one too.

For an interior pair *k*, *k+1* (k > 1) the direction flip would also
flip pass k−1's direction relative to pass k's reads — the evaluator
streams each spool *backward*, which forces strictly alternating
directions — so interior pairs cannot fuse independently.  First-pair
fusion, iterated, is therefore complete for this architecture.

Measured effect on the committed grammars: *calc* 2→1, *pascal* 2→1,
*linguist* 4→3; *binary* does not fuse (its ``SCALE`` attributes form a
genuine zig-zag between the two directions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ag.model import AttributeGrammar
from repro.passes.partition import PassAssignment
from repro.passes.schedule import (
    AttrId,
    Direction,
    direction_of_pass,
    schedule_production,
)

__all__ = ["FusionResult", "fuse_assignment"]


@dataclass
class FusionResult:
    """Outcome of :func:`fuse_assignment`.

    ``assignment`` is the (possibly) fused assignment; when nothing
    fused it is the *original* object, untouched.  ``fused_pairs``
    records each accepted merge as ``(pass_a, pass_b)`` in the
    numbering current at the time of that merge (iterated fusion always
    merges ``(1, 2)``, so the list length equals the number of
    eliminated passes).
    """

    assignment: PassAssignment
    original_n_passes: int
    fused_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def passes_eliminated(self) -> int:
        return self.original_n_passes - self.assignment.n_passes

    @property
    def fused(self) -> bool:
        return self.passes_eliminated > 0


def _try_fuse_first_pair(
    ag: AttributeGrammar, current: PassAssignment
) -> PassAssignment | None:
    """Attempt to merge passes 1 and 2 of ``current`` into a single
    traversal running in pass 2's direction.  Returns the fused
    assignment, or None when some production cannot schedule the merged
    attribute set in one sweep."""
    if current.n_passes < 2:
        return None
    candidate: Dict[AttrId, int] = {
        attr: (1 if p == 2 else (p - 1 if p > 2 else p))
        for attr, p in current.attr_pass.items()
    }
    new_first = current.first_direction.opposite
    new_n = current.n_passes - 1
    # Only the merged pass can change schedulability (see module doc),
    # but re-verify *every* pass of every production: the check is
    # once-per-grammar work and the assertion inside
    # PassAssignment.schedule would otherwise fire far from the cause.
    for prod in ag.productions:
        for pass_k in range(1, new_n + 1):
            result = schedule_production(
                ag, prod, pass_k, direction_of_pass(pass_k, new_first), candidate
            )
            if not result.ok:
                return None
    return PassAssignment(ag, new_first, candidate, new_n)


def fuse_assignment(
    ag: AttributeGrammar,
    assignment: PassAssignment,
    metrics=None,
    tracer=None,
) -> FusionResult:
    """Iteratively fuse the first adjacent pass pair while legal.

    The returned assignment is a drop-in replacement for the input:
    deadness analysis, subsumption, pass plans, code generation,
    checkpoint manifests, and the build cache all consume it through
    the ordinary :class:`PassAssignment` interface.  When at least one
    merge fires, every production's semantic functions are re-stamped
    with their new pass numbers and the consistent per-pass schedules
    are cached on the fused assignment (mirroring ``assign_passes``).

    ``metrics``/``tracer`` (a :class:`repro.obs.MetricsRegistry` /
    ``Tracer``) receive ``fusion.*`` counters and one ``fusion.fuse``
    instant per accepted merge.
    """
    original_n = assignment.n_passes
    current = assignment
    pairs: List[Tuple[int, int]] = []
    while current.n_passes >= 2:
        if metrics is not None:
            metrics.counter("fusion.candidates").inc()
        fused = _try_fuse_first_pair(ag, current)
        if fused is None:
            break
        # Original-numbering bookkeeping: merge number i collapses what
        # were originally passes (i, i+1) ... but after earlier merges
        # the current numbering has already shifted; record the merge
        # in the numbering current at merge time (always (1, 2)).
        pairs.append((1, 2))
        if tracer is not None:
            tracer.instant(
                "fusion.fuse",
                cat="fusion",
                merged_direction=fused.first_direction.value,
                n_passes_before=current.n_passes,
                n_passes_after=fused.n_passes,
            )
        current = fused

    if current is not assignment:
        # Warm the schedule cache and restamp function pass numbers,
        # exactly as assign_passes does for a fresh assignment.
        for prod in ag.productions:
            for pass_k in range(1, current.n_passes + 1):
                current.schedule(prod, pass_k)
            for func in prod.functions:
                func.pass_number = max(
                    current.attr_pass[(t.symbol, t.attr_name)]
                    for t in func.targets
                )
    if metrics is not None:
        metrics.counter("fusion.fused").inc(len(pairs))
        metrics.counter("fusion.passes_eliminated").inc(
            original_n - current.n_passes
        )
        metrics.gauge("fusion.n_passes_before").set(original_n)
        metrics.gauge("fusion.n_passes_after").set(current.n_passes)
    return FusionResult(
        assignment=current, original_n_passes=original_n, fused_pairs=pairs
    )
