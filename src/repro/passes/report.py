"""Human-readable evaluability reports (part of the listing output)."""

from __future__ import annotations

from typing import List

from repro.ag.model import AttributeGrammar
from repro.passes.partition import PassAssignment
from repro.passes.schedule import INTRINSIC_PASS


def render_pass_report(assignment: PassAssignment) -> str:
    """Render the pass assignment the way the listing overlay would."""
    ag = assignment.grammar
    lines = [
        f"attribute grammar {ag.name!r}: evaluable in {assignment.n_passes} "
        f"alternating pass(es), first pass {assignment.first_direction.value}",
    ]
    for k in range(1, assignment.n_passes + 1):
        attrs = assignment.attributes_of_pass(k)
        lines.append(f"  pass {k} ({assignment.direction(k).value}): {len(attrs)} attribute(s)")
        for sym, attr in attrs:
            lines.append(f"      {sym}.{attr}")
    intrinsics = [a for a, p in assignment.attr_pass.items() if p == INTRINSIC_PASS]
    if intrinsics:
        lines.append(f"  intrinsic (set by the parser): {len(intrinsics)} attribute(s)")
        for sym, attr in sorted(intrinsics):
            lines.append(f"      {sym}.{attr}")
    return "\n".join(lines)
