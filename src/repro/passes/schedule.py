"""Per-production, per-pass schedule simulation.

Figure 3 fixes the event skeleton of a production-procedure::

    read limb node
    for each RHS node X_i (left-to-right or right-to-left):
        read all attribs of X_i from the input APT file
        [eval pending semantic functions]
        visit the sub-APT rooted at X_i          (nonterminals only)
        write all attribs of X_i to the output APT file
    [eval pending semantic functions]
    write limb node
    return

Semantic functions of the current pass are *drained* greedily at the
bracketed points, as early as their arguments allow — the paper's §III
loosening ("there is nothing to prevent us from evaluating a
synthesized attribute-instance of the left-hand-side … before visiting
some right-hand-side sub-APT").  Hard constraints remain: a pass-k
inherited attribute of X_i must be evaluated after ``read X_i`` and
before ``visit X_i``; pass-k synthesized attributes of X_i appear only
after ``visit X_i``; attributes of a not-yet-read node are unavailable
even if computed in an earlier pass, because the node record is still
on disk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ag.copyrules import Binding, production_bindings
from repro.ag.dependencies import OccKey, binding_argument_keys
from repro.ag.model import (
    AttrKind,
    AttributeGrammar,
    LHS_POSITION,
    LIMB_POSITION,
    Production,
    SymbolKind,
)

#: Pass number of intrinsic attributes: defined by the parser, before pass 1.
INTRINSIC_PASS = 0

#: Key identifying an attribute grammar-wide: (symbol name, attribute name).
AttrId = Tuple[str, str]


class Direction(enum.Enum):
    L2R = "left-to-right"
    R2L = "right-to-left"

    @property
    def opposite(self) -> "Direction":
        return Direction.R2L if self is Direction.L2R else Direction.L2R


def direction_of_pass(k: int, first: Direction) -> Direction:
    """Direction of pass ``k`` (1-based) when pass 1 runs ``first``."""
    return first if k % 2 == 1 else first.opposite


class StepKind(enum.Enum):
    READ = "get"      # GetNode<Symbol>
    VISIT = "visit"   # call child production-procedure
    WRITE = "put"     # PutNode<Symbol>
    EVAL = "eval"     # evaluate one semantic-function binding


@dataclass
class ScheduleStep:
    kind: StepKind
    #: For READ/VISIT/WRITE: the occurrence position (LIMB_POSITION for limb).
    position: int = 0
    #: For EVAL: the binding evaluated.
    binding: Optional[Binding] = None

    def render(self, prod: Production) -> str:
        if self.kind is StepKind.EVAL:
            return f"eval {self.binding}"
        if self.position == LIMB_POSITION:
            name = prod.limb
        else:
            name = prod.occurrence_at(self.position).name
        return f"{self.kind.value} {name}"


@dataclass
class ScheduleResult:
    steps: List[ScheduleStep]
    #: Bindings that could not be scheduled in this pass.
    failed: List[Binding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed


def schedule_production(
    ag: AttributeGrammar,
    prod: Production,
    pass_k: int,
    direction: Direction,
    attr_pass: Dict[AttrId, int],
) -> ScheduleResult:
    """Simulate pass ``pass_k`` over ``prod``; place this pass's bindings.

    ``attr_pass`` maps every attribute to its (candidate) pass number;
    intrinsic attributes must map to :data:`INTRINSIC_PASS`.
    """

    def pass_of(symbol: str, attr: str) -> int:
        return attr_pass[(symbol, attr)]

    def key_symbol(position: int) -> str:
        if position == LHS_POSITION:
            return prod.lhs
        if position == LIMB_POSITION:
            return prod.limb
        return prod.rhs[position - 1]

    # Bindings whose target belongs to this pass, grouped for the checks.
    pending: List[Binding] = []
    for b in production_bindings(prod):
        if pass_of(b.target.symbol, b.target.attr_name) == pass_k:
            pending.append(b)

    available: Set[OccKey] = set()
    read_positions: Set[int] = set()

    def node_read(position: int) -> None:
        """Attributes that become readable once a node is in memory."""
        read_positions.add(position)
        sym = ag.symbol(key_symbol(position))
        for attr in sym.attributes.values():
            p = pass_of(sym.name, attr.name)
            if p < pass_k:
                available.add((position, attr.name))
            elif p == pass_k and position == LHS_POSITION and attr.kind is AttrKind.INHERITED:
                # Pass-k inherited attributes of the LHS were computed by
                # the parent just before this visit.
                available.add((position, attr.name))

    def target_placeable(b: Binding) -> bool:
        pos = b.target.position
        if pos == LHS_POSITION or pos == LIMB_POSITION:
            return True  # node in memory from the start
        return pos in read_positions

    def args_available(b: Binding) -> bool:
        return all(k in available for k in binding_argument_keys(b))

    steps: List[ScheduleStep] = []
    failed: List[Binding] = []

    def drain() -> None:
        progress = True
        while progress:
            progress = False
            for b in list(pending):
                if target_placeable(b) and args_available(b):
                    pending.remove(b)
                    steps.append(ScheduleStep(StepKind.EVAL, binding=b))
                    available.add((b.target.position, b.target.attr_name))
                    progress = True

    def force(bindings: Sequence[Binding]) -> None:
        """Mark bindings failed but make their targets available so the
        simulation can keep going and report every failure of this pass."""
        for b in bindings:
            pending.remove(b)
            failed.append(b)
            available.add((b.target.position, b.target.attr_name))

    # --- the skeleton ----------------------------------------------------
    node_read(LHS_POSITION)  # the LHS node arrives as the procedure argument
    if prod.limb:
        steps.append(ScheduleStep(StepKind.READ, LIMB_POSITION))
        node_read(LIMB_POSITION)
    drain()

    positions = list(prod.rhs_positions())
    if direction is Direction.R2L:
        positions.reverse()

    for position in positions:
        sym = ag.symbol(prod.rhs[position - 1])
        steps.append(ScheduleStep(StepKind.READ, position))
        node_read(position)
        drain()
        if sym.kind is SymbolKind.NONTERMINAL:
            # All pass-k inherited attributes of this child must be ready.
            late = [
                b
                for b in pending
                if b.target.position == position
                and b.target.attribute.kind is AttrKind.INHERITED
            ]
            if late:
                force(late)
                drain()
            steps.append(ScheduleStep(StepKind.VISIT, position))
            # The child's visit computed its pass-k synthesized attributes.
            for attr in sym.synthesized:
                if pass_of(sym.name, attr.name) == pass_k:
                    available.add((position, attr.name))
            drain()
        steps.append(ScheduleStep(StepKind.WRITE, position))

    drain()
    if pending:
        force(list(pending))
    if prod.limb:
        steps.append(ScheduleStep(StepKind.WRITE, LIMB_POSITION))
    return ScheduleResult(steps=steps, failed=failed)
