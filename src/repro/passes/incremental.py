"""Incremental re-translation: APT subtree memoization (MEMO1).

LINGUIST-86's root-to-node-stack pass discipline means the attribute
state live at any node is exactly the stack above it, which makes a
"dirty spine" cut well-defined: a sealed subtree whose inherited
context is unchanged must produce byte-identical output (attributed
tree translations decompose over subtrees — Hashimoto & Maneth).

This module exploits that.  A :class:`MemoStore` lives in a directory
next to nothing else (``memo_dir``) and holds, across translations of
*different* inputs with the *same* translator:

* the sealed v3 spool of **every pass** of the previous run
  (``pass<k>.g<N>.spool`` — generation-numbered so a splice source is
  never the file being written), and
* a sealed ``MEMO1`` manifest (``memo.ndjson``, CRC-per-line NDJSON
  with a seal line, exactly the PROV1 framing) of per-pass entries
  mapping ``(subtree hash, inherited-context fingerprint)`` to the
  output record range that subtree produced, its input span, and the
  post-visit attribute/global state.

The memo is *per pass* because every pass of the alternating paradigm
reads a subtree-contiguous spool and writes a postfix spool (the §II
reversal trick): pass 1 splices against the parser's postfix (or
prefix) emission, pass k against pass k-1's postfix output.  On
re-translation the evaluator consults the memo at every candidate
``VISIT``: a hit **splices** the memoized record range out of the
sealed spool (random block access via
:class:`~repro.apt.storage.RandomAccessReader`) instead of evaluating
the subtree, skips the matching input records, and restores the
post-visit state — only the dirty spine from the edit site to the root
is re-evaluated, in every pass.  Resumed (checkpoint-restart) runs
always evaluate cold — one of the documented invalidation rules
(docs/performance.md).

Any integrity failure (foreign manifest, stale spool identity, CRC
damage, unpicklable payload) degrades to a **silent cold miss** — a
corrupt memo can cost speed, never correctness.  ``repro fsck`` and
``repro doctor`` verify and salvage the manifest like every other
sealed artifact.
"""

from __future__ import annotations

import base64
import bisect
import hashlib
import json
import os
import pickle
import re
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.ag.model import AttributeGrammar
from repro.apt.storage import DiskSpool, RandomAccessReader, Spool
from repro.errors import MemoCorruptionError
from repro.lalr.grammar import EOF_SYMBOL
from repro.obs.provenance import canonical_value
from repro.util import atomic_write as _aw

__all__ = [
    "MEMO_FORMAT",
    "MEMO_LOG",
    "MEMO_HIT",
    "DEFAULT_MIN_SPAN",
    "MemoEntry",
    "MemoScanReport",
    "MemoSession",
    "MemoStore",
    "SubtreeIndex",
    "looks_like_memo_manifest",
    "memo_identity",
    "postfix_subtree_index",
    "prefix_subtree_index",
    "record_digest",
    "salvage_memo",
    "scan_memo",
]

#: Format tag in the manifest header line; bump on layout changes.
MEMO_FORMAT = "MEMO1"

#: Manifest file name inside a memo directory.
MEMO_LOG = "memo.ndjson"

#: Subtrees smaller than this many APT records are never memoized —
#: the fingerprint would cost more than the evaluation it saves.
DEFAULT_MIN_SPAN = 8

_SEPARATORS = (",", ":")

_GEN_RE = re.compile(r"^pass(\d+)\.g(\d+)\.spool$")


class _Hit:
    """Sentinel returned by :meth:`MemoSession.enter_*` on a splice."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<MEMO_HIT>"


#: The hit sentinel the generated memo variant tests against.
MEMO_HIT = _Hit()


# ---------------------------------------------------------------------------
# subtree hashing
# ---------------------------------------------------------------------------


def record_digest(record: tuple) -> bytes:
    """Structural digest of one APT record.

    Computed over the *decoded* tuple — symbol, production index, limb
    flag, and every attribute rendered through
    :func:`~repro.obs.provenance.canonical_value` — so it is invariant
    under spool round-trips and name-table interning.
    """
    symbol, production, attrs, is_limb = record
    h = hashlib.blake2b(digest_size=16)
    h.update(symbol.encode("utf-8"))
    h.update(b"\x00L" if is_limb else b"\x00N")
    h.update(str(production).encode("ascii"))
    for name in sorted(attrs):
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
        h.update(b"=")
        h.update(canonical_value(attrs[name]).encode("utf-8"))
    return h.digest()


class SubtreeIndex:
    """Per-record subtree hashes and spans of one postfix APT spool.

    ``hashes[i]`` covers the whole subtree whose *last* (root) record
    sits at forward index ``i``; ``spans[i]`` is that subtree's record
    count, so the subtree occupies records ``[i - spans[i] + 1, i]`` —
    postfix emission keeps every subtree contiguous.
    """

    __slots__ = ("hashes", "spans")

    def __init__(self, hashes: List[bytes], spans: List[int]):
        self.hashes = hashes
        self.spans = spans

    def __len__(self) -> int:
        return len(self.hashes)


def postfix_subtree_index(
    records: Iterable[tuple], ag: AttributeGrammar
) -> SubtreeIndex:
    """Hash every subtree of a postfix record stream in one sweep.

    Mirrors the stack discipline of
    :func:`~repro.evalgen.driver.reconstruct_tree`: leaves and limbs
    hash to their own record digest; an interior node combines its
    children's subtree hashes (in order), its limb's, and its own
    record digest.
    """
    hashes: List[bytes] = []
    spans: List[int] = []
    stack: List[Tuple[int, bytes]] = []
    limb: Optional[Tuple[int, bytes]] = None
    for i, record in enumerate(records):
        _symbol, production, _attrs, is_limb = record
        d = record_digest(record)
        if is_limb:
            hashes.append(d)
            spans.append(1)
            limb = (i, d)
            continue
        if production is None:
            hashes.append(d)
            spans.append(1)
            stack.append((i, d))
            continue
        prod = ag.productions[production]
        n = len(prod.rhs)
        children = stack[len(stack) - n :] if n else []
        if n:
            del stack[len(stack) - n :]
        start = i
        comb = hashlib.blake2b(digest_size=16)
        for child_start, child_digest in children:
            comb.update(child_digest)
            start = min(start, child_start)
        if prod.limb:
            if limb is None:
                raise MemoCorruptionError(
                    f"postfix stream misses the limb of production "
                    f"{prod.index} at record {i}",
                    record_index=i,
                    reason="framing",
                )
            comb.update(limb[1])
            start = min(start, limb[0])
        limb = None
        comb.update(d)
        digest = comb.digest()
        hashes.append(digest)
        spans.append(i - start + 1)
        stack.append((start, digest))
    return SubtreeIndex(hashes, spans)


def prefix_subtree_index(
    records: Iterable[tuple], ag: AttributeGrammar
) -> SubtreeIndex:
    """Hash every subtree of a *prefix* record stream in one sweep.

    The prefix initial file (first pass left-to-right) emits ``node,
    limb, children`` — subtrees are still contiguous, but a subtree's
    *first* record is its root, so ``hashes[i]``/``spans[i]`` describe
    the subtree occupying ``[i, i + spans[i] - 1]``.  Mirrors
    :func:`~repro.apt.linear.iter_prefix`.
    """
    hashes: List[bytes] = []
    spans: List[int] = []
    #: [start index, digest parts (own record first), expect_limb,
    #:  children remaining]
    frames: List[list] = []

    def finalize(frame: list, end_i: int) -> bytes:
        comb = hashlib.blake2b(digest_size=16)
        for part in frame[1]:
            comb.update(part)
        digest = comb.digest()
        hashes[frame[0]] = digest
        spans[frame[0]] = end_i - frame[0] + 1
        return digest

    def credit(digest: bytes, end_i: int) -> None:
        """A subtree completed at ``end_i``; fold it into the enclosing
        frame, cascading completions toward the root."""
        while frames:
            frame = frames[-1]
            if frame[2]:
                raise MemoCorruptionError(
                    f"prefix stream misses the limb of the production "
                    f"opened at record {frame[0]}",
                    record_index=end_i,
                    reason="framing",
                )
            frame[1].append(digest)
            frame[3] -= 1
            if frame[3] > 0:
                return
            frames.pop()
            digest = finalize(frame, end_i)

    for i, record in enumerate(records):
        _symbol, production, _attrs, is_limb = record
        d = record_digest(record)
        hashes.append(d)
        spans.append(1)
        if is_limb:
            if not frames or not frames[-1][2]:
                raise MemoCorruptionError(
                    f"prefix stream carries an unexpected limb at record {i}",
                    record_index=i,
                    reason="framing",
                )
            frame = frames[-1]
            frame[1].append(d)
            frame[2] = False
            if frame[3] == 0:
                frames.pop()
                credit(finalize(frame, i), i)
            continue
        if production is None:
            credit(d, i)
            continue
        prod = ag.productions[production]
        frame = [i, [d], bool(prod.limb), len(prod.rhs)]
        if frame[2] or frame[3]:
            frames.append(frame)
        else:
            credit(d, i)
    return SubtreeIndex(hashes, spans)


# ---------------------------------------------------------------------------
# front-end reuse: shape-preserving token patching + dirty-spine rehash
# ---------------------------------------------------------------------------

#: Sentinel position in a ``parts`` list standing for the node's *own*
#: record digest (as opposed to a child/limb subtree hash position).
_OWN = -1

#: Front-end caching is skipped above this initial-spool byte estimate
#: so the in-process cache cannot defeat the bounded-memory premise.
_FRONTEND_BYTE_CAP = 64 * 1024 * 1024


class _RecordListSpool(Spool):
    """A finalized read-only spool over an in-memory record list.

    The front-end reuse path hands the driver the previous run's
    (patched) initial records without re-serializing them — the same
    by-reference discipline :class:`~repro.apt.storage.AdaptiveSpool`
    uses below its spill budget."""

    def __init__(self, records: List[tuple]):
        super().__init__(None, "initial")
        self._records = records
        self.n_records = len(records)
        self._finalized = True

    def read_forward(self):
        return iter(self._records)

    def read_backward(self):
        return iter(reversed(self._records))


class _Frontend:
    """In-process cache of one memoized translation's front-end: the
    token kind sequence, the initial APT records, the subtree index,
    and the structural arrays a dirty-spine rehash needs."""

    __slots__ = (
        "kinds", "records", "index", "own", "parts", "parent",
        "leaf_positions", "forward",
    )

    def __init__(
        self, kinds, records, index, own, parts, parent,
        leaf_positions, forward,
    ):
        self.kinds = kinds
        self.records = records
        self.index = index
        #: Per-record *record* digest (≠ subtree hash for interiors).
        self.own = own
        #: Per-record combination recipe: ordered positions whose
        #: subtree hashes (or :data:`_OWN` for the record's own digest)
        #: produce the node's subtree hash; None for leaves/limbs.
        self.parts = parts
        #: Per-record enclosing-node position (-1 at the root).
        self.parent = parent
        #: Positions of token-derived records, in source order.
        self.leaf_positions = leaf_positions
        self.forward = forward


def _structure_postfix(
    records: List[tuple], ag: AttributeGrammar
) -> Tuple[SubtreeIndex, List[bytes], List[Optional[List[int]]], List[int]]:
    """:func:`postfix_subtree_index` plus the structure arrays
    (identical hashes — the property suite pins the equivalence)."""
    hashes: List[bytes] = []
    spans: List[int] = []
    own: List[bytes] = []
    parts: List[Optional[List[int]]] = []
    parent: List[int] = []
    stack: List[Tuple[int, int, bytes]] = []  # (start, root_pos, digest)
    limb: Optional[Tuple[int, bytes]] = None
    for i, record in enumerate(records):
        _symbol, production, _attrs, is_limb = record
        d = record_digest(record)
        own.append(d)
        parts.append(None)
        parent.append(-1)
        if is_limb:
            hashes.append(d)
            spans.append(1)
            limb = (i, d)
            continue
        if production is None:
            hashes.append(d)
            spans.append(1)
            stack.append((i, i, d))
            continue
        prod = ag.productions[production]
        n = len(prod.rhs)
        children = stack[len(stack) - n :] if n else []
        if n:
            del stack[len(stack) - n :]
        start = i
        comb = hashlib.blake2b(digest_size=16)
        p_list: List[int] = []
        for child_start, child_root, child_digest in children:
            comb.update(child_digest)
            start = min(start, child_start)
            p_list.append(child_root)
            parent[child_root] = i
        if prod.limb:
            if limb is None:
                raise MemoCorruptionError(
                    f"postfix stream misses the limb of production "
                    f"{prod.index} at record {i}",
                    record_index=i,
                    reason="framing",
                )
            comb.update(limb[1])
            start = min(start, limb[0])
            p_list.append(limb[0])
            parent[limb[0]] = i
        limb = None
        comb.update(d)
        p_list.append(_OWN)
        digest = comb.digest()
        hashes.append(digest)
        spans.append(i - start + 1)
        parts[i] = p_list
        stack.append((start, i, digest))
    return SubtreeIndex(hashes, spans), own, parts, parent


def _structure_prefix(
    records: List[tuple], ag: AttributeGrammar
) -> Tuple[SubtreeIndex, List[bytes], List[Optional[List[int]]], List[int]]:
    """:func:`prefix_subtree_index` plus the structure arrays."""
    hashes: List[bytes] = []
    spans: List[int] = []
    own: List[bytes] = []
    parts_out: List[Optional[List[int]]] = []
    parent: List[int] = []
    #: [root position, parts (positions, _OWN first), expect_limb,
    #:  children remaining]
    frames: List[list] = []

    def finalize(frame: list, end_i: int) -> None:
        comb = hashlib.blake2b(digest_size=16)
        for p in frame[1]:
            comb.update(own[frame[0]] if p == _OWN else hashes[p])
        hashes[frame[0]] = comb.digest()
        spans[frame[0]] = end_i - frame[0] + 1
        parts_out[frame[0]] = frame[1]

    def credit(root_pos: int, end_i: int) -> None:
        while frames:
            frame = frames[-1]
            if frame[2]:
                raise MemoCorruptionError(
                    f"prefix stream misses the limb of the production "
                    f"opened at record {frame[0]}",
                    record_index=end_i,
                    reason="framing",
                )
            frame[1].append(root_pos)
            parent[root_pos] = frame[0]
            frame[3] -= 1
            if frame[3] > 0:
                return
            frames.pop()
            finalize(frame, end_i)
            root_pos = frame[0]

    for i, record in enumerate(records):
        _symbol, production, _attrs, is_limb = record
        d = record_digest(record)
        hashes.append(d)
        spans.append(1)
        own.append(d)
        parts_out.append(None)
        parent.append(-1)
        if is_limb:
            if not frames or not frames[-1][2]:
                raise MemoCorruptionError(
                    f"prefix stream carries an unexpected limb at record {i}",
                    record_index=i,
                    reason="framing",
                )
            frame = frames[-1]
            frame[1].append(i)
            parent[i] = frame[0]
            frame[2] = False
            if frame[3] == 0:
                frames.pop()
                finalize(frame, i)
                credit(frame[0], i)
            continue
        if production is None:
            credit(i, i)
            continue
        prod = ag.productions[production]
        frame = [i, [_OWN], bool(prod.limb), len(prod.rhs)]
        if frame[2] or frame[3]:
            frames.append(frame)
        else:
            credit(i, i)
    return SubtreeIndex(hashes, spans), own, parts_out, parent


def _rehash_spine(
    hashes: List[bytes],
    own: List[bytes],
    parts: List[Optional[List[int]]],
    parent: List[int],
    dirty: List[int],
    forward: bool,
) -> None:
    """Recompute, in place, the subtree hashes of exactly the ancestors
    of the ``dirty`` positions (whose own entries were already
    updated).  Prefix order puts parents *before* children, so the
    bottom-up sweep runs descending there, ascending for postfix."""
    spine = set()
    for j in dirty:
        p = parent[j]
        while p >= 0 and p not in spine:
            spine.add(p)
            p = parent[p]
    for i in sorted(spine, reverse=forward):
        comb = hashlib.blake2b(digest_size=16)
        for p in parts[i]:
            comb.update(own[i] if p == _OWN else hashes[p])
        hashes[i] = comb.digest()


def context_fingerprint(
    attrs: Dict[str, Any], group_values: Iterable[Tuple[str, Any]]
) -> bytes:
    """Fingerprint of the inherited context at a ``VISIT``: the node's
    entry attributes plus the live pass globals, all rendered through
    :func:`canonical_value` (the same faithful-repr convention the
    whole differential harness keys on)."""
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(attrs):
        h.update(name.encode("utf-8"))
        h.update(b"=")
        h.update(canonical_value(attrs[name]).encode("utf-8"))
        h.update(b"\x00")
    for group, value in group_values:
        h.update(b"@")
        h.update(group.encode("utf-8"))
        h.update(b"=")
        h.update(canonical_value(value).encode("utf-8"))
        h.update(b"\x00")
    return h.digest()


def memo_identity(
    ag: AttributeGrammar, plans, library=None
) -> str:
    """Hex identity of everything that determines pass-1 output given
    pass-1 input: the grammar's productions, the full pass-plan action
    structure, and the function library's resolvable names.  A memo
    written under a different identity is never consulted."""
    h = hashlib.blake2b(digest_size=16)

    def feed(text: str) -> None:
        h.update(text.encode("utf-8"))
        h.update(b"\x00")

    feed(ag.name)
    feed(ag.start)
    for prod in ag.productions:
        feed(f"{prod.index}:{prod.lhs}->{' '.join(prod.rhs)}|{prod.limb or ''}")
    for plan in plans:
        feed(
            f"pass{plan.pass_k}:{plan.direction.value}"
            f"|{plan.groups}|{plan.root_exports}|{plan.root_fields}"
        )
        for prod_index in sorted(plan.plans):
            feed(f"prod{prod_index}")
            for action in plan.plans[prod_index].actions:
                binding = getattr(action, "binding", None)
                feed(
                    f"{action.kind.name}:{getattr(action, 'position', '')}"
                    f":{getattr(action, 'temp', '')}"
                    f":{getattr(action, 'group', '')}"
                    f":{getattr(action, 'fields', '')}"
                    f":{getattr(action, 'source', '')}"
                    f":{binding if binding is not None else ''}"
                )
    if library is not None:
        feed(",".join(sorted(library.functions)))
        for name in sorted(library.constants):
            feed(f"{name}={canonical_value(library.constants[name])}")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# memo entries + manifest I/O
# ---------------------------------------------------------------------------


class MemoEntry:
    """One memoized subtree of one pass: where its output lives, how
    much input it covers, and the post-visit state to restore on a
    hit."""

    __slots__ = (
        "pass_k", "h", "x", "out_start", "out_len", "n_skip", "blob",
        "_payload", "_line",
    )

    def __init__(
        self,
        pass_k: int,
        h: str,
        x: str,
        out_start: int,
        out_len: int,
        n_skip: int,
        blob: str,
    ):
        self.pass_k = pass_k
        self.h = h
        self.x = x
        self.out_start = out_start
        self.out_len = out_len
        self.n_skip = n_skip
        #: base64(pickle((post_attrs, post_globals))) — decoded lazily.
        self.blob = blob
        self._payload: Optional[tuple] = None
        #: Cached framed manifest line (computed once; steady-state
        #: re-commits reuse it instead of re-serializing the entry).
        self._line: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str]:
        return (self.h, self.x)

    @property
    def out_end(self) -> int:
        return self.out_start + self.out_len

    def payload(self) -> Tuple[Dict[str, Any], List[Any]]:
        """``(post_attrs, post_globals)``; raises on a damaged blob."""
        if self._payload is None:
            self._payload = pickle.loads(base64.b64decode(self.blob))
        return self._payload

    def shifted(self, delta: int) -> "MemoEntry":
        """The same entry with its output range moved by ``delta``
        records (nested carry-forward on a hit).  A zero shift — the
        common case when an edit preserves the tree shape — returns the
        entry itself, keeping its cached manifest line."""
        if delta == 0:
            return self
        return MemoEntry(
            self.pass_k, self.h, self.x, self.out_start + delta,
            self.out_len, self.n_skip, self.blob,
        )

    def line(self) -> str:
        """The framed MEMO1 manifest line for this entry (cached)."""
        if self._line is None:
            self._line = _frame_line(self.to_doc())
        return self._line

    def to_doc(self) -> Dict[str, Any]:
        return {
            "e": "memo",
            "p": self.pass_k,
            "h": self.h,
            "x": self.x,
            "o": self.out_start,
            "l": self.out_len,
            "k": self.n_skip,
            "b": self.blob,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any], index: int, path: str) -> "MemoEntry":
        try:
            entry = cls(
                doc["p"], doc["h"], doc["x"], doc["o"], doc["l"],
                doc["k"], doc["b"],
            )
        except KeyError as exc:
            raise MemoCorruptionError(
                f"memo entry {index} misses field {exc}",
                record_index=index,
                path=path,
                reason="framing",
            ) from None
        if (
            entry.out_start < 0
            or entry.out_len < 0
            or entry.n_skip < 0
            or not isinstance(entry.pass_k, int)
            or entry.pass_k < 1
        ):
            raise MemoCorruptionError(
                f"memo entry {index} has a negative range",
                record_index=index,
                path=path,
                reason="framing",
            )
        return entry


def _frame_line(obj: Dict[str, Any]) -> str:
    body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
    crc = zlib.crc32(body.encode("utf-8"))
    return f'{body[:-1]},"c":{crc}}}\n'


def _verify_line(line: str, index: int, path: str) -> Dict[str, Any]:
    """Parse + CRC-check one manifest line; raise naming the record."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise MemoCorruptionError(
            f"memo record {index} is not valid JSON ({exc})",
            record_index=index,
            path=path,
            reason="framing",
        ) from exc
    if not isinstance(obj, dict) or "c" not in obj:
        raise MemoCorruptionError(
            f"memo record {index} has no checksum field",
            record_index=index,
            path=path,
            reason="framing",
        )
    want = obj.pop("c")
    body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
    if zlib.crc32(body.encode("utf-8")) != want:
        raise MemoCorruptionError(
            f"memo record {index} checksum mismatch (bit rot or torn write)",
            record_index=index,
            path=path,
            reason="checksum",
        )
    return obj


def _resolve_manifest_path(path_or_dir: str) -> str:
    if os.path.isdir(path_or_dir):
        return os.path.join(path_or_dir, MEMO_LOG)
    return path_or_dir


def looks_like_memo_manifest(path: str) -> bool:
    """Cheap sniff used by ``repro fsck``/``doctor`` to route files: a
    memo manifest is NDJSON whose first line carries the MEMO1 tag."""
    try:
        with open(path, "rb") as f:
            head = f.read(4096)
    except OSError:
        return False
    first = head.split(b"\n", 1)[0]
    return first.startswith(b"{") and b'"' + MEMO_FORMAT.encode() + b'"' in first


def _read_lines(path: str) -> List[str]:
    """Read a manifest's lines, tolerating non-UTF8 byte damage.

    ``errors="replace"`` keeps a flipped byte from turning into a
    ``UnicodeDecodeError`` crash: the replacement character lands only
    in the damaged line, whose per-line CRC then fails exactly where
    the damage is — a typed :class:`MemoCorruptionError`, never an
    unhandled decode exception.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def _read_manifest(path: str) -> Tuple[Dict[str, Any], List[MemoEntry]]:
    """Fully verify a sealed manifest; return (header, entries)."""
    try:
        lines = _read_lines(path)
    except OSError as exc:
        raise MemoCorruptionError(
            f"memo manifest unreadable: {exc}", path=path, reason="missing"
        ) from exc
    if not lines:
        raise MemoCorruptionError(
            "memo manifest is empty", path=path, reason="truncated"
        )
    header = _verify_line(lines[0], 0, path)
    if header.get("e") != "hdr" or header.get("format") != MEMO_FORMAT:
        raise MemoCorruptionError(
            f"memo record 0 is not a {MEMO_FORMAT} header",
            record_index=0,
            path=path,
            reason="header",
        )
    seal = _verify_line(lines[-1], len(lines) - 1, path)
    if seal.get("e") != "seal":
        raise MemoCorruptionError(
            "memo manifest is not sealed (crash mid-write?)",
            record_index=len(lines) - 1,
            path=path,
            reason="unsealed",
        )
    entries: List[MemoEntry] = []
    stream_crc = 0
    for i, line in enumerate(lines[:-1]):
        stream_crc = zlib.crc32((line + "\n").encode("utf-8"), stream_crc)
        if i == 0:
            continue
        obj = _verify_line(line, i, path)
        if obj.get("e") != "memo":
            raise MemoCorruptionError(
                f"memo record {i} has unknown kind {obj.get('e')!r}",
                record_index=i,
                path=path,
                reason="framing",
            )
        entry = MemoEntry.from_doc(obj, i, path)
        entry._line = line + "\n"
        entries.append(entry)
    if seal.get("n") != len(lines) - 2:
        raise MemoCorruptionError(
            f"memo seal counts {seal.get('n')} entries, found "
            f"{len(lines) - 2}",
            record_index=len(lines) - 1,
            path=path,
            reason="seal",
        )
    if seal.get("crc") != stream_crc:
        raise MemoCorruptionError(
            "memo seal stream-CRC mismatch (lines reordered or lost)",
            record_index=len(lines) - 1,
            path=path,
            reason="seal",
        )
    return header, entries


class MemoScanReport:
    """Outcome of a tolerant sweep over a memo manifest (``repro fsck``)."""

    def __init__(
        self,
        path: str,
        n_valid: int = 0,
        n_entries: Optional[int] = None,
        sealed: bool = False,
        error: Optional[MemoCorruptionError] = None,
    ):
        self.path = path
        #: Entry lines whose framing + checksum verified (header excluded).
        self.n_valid = n_valid
        #: Seal-line entry count (None when the seal is missing/damaged).
        self.n_entries = n_entries
        self.sealed = sealed
        self.error = error
        #: Basenames of the splice-source spools a *clean* manifest
        #: references (``repro doctor`` uses this to tell live
        #: generations from stale debris).
        self.spools: List[str] = []

    @property
    def ok(self) -> bool:
        return self.error is None

    def render(self) -> str:
        head = self.path
        if self.ok:
            return (
                f"{head}\n  format {MEMO_FORMAT}, sealed, "
                f"{self.n_valid} memo entr{'y' if self.n_valid == 1 else 'ies'}"
            )
        return (
            f"{head}\n  format {MEMO_FORMAT}: {self.error}\n"
            f"  {self.n_valid} entry line(s) verified before the damage"
        )


def scan_memo(path: str, metrics=None) -> MemoScanReport:
    """Sweep a memo manifest, verifying every line; never raises."""
    path = _resolve_manifest_path(path)
    report = MemoScanReport(path=path)
    try:
        header, entries = _read_manifest(path)
    except MemoCorruptionError as exc:
        report.error = exc
        # Count the valid prefix for the salvage report.
        try:
            lines = _read_lines(path)
        except OSError:
            lines = []
        n = 0
        for i, line in enumerate(lines):
            try:
                obj = _verify_line(line, i, path)
            except MemoCorruptionError:
                break
            if i == 0 and (
                obj.get("e") != "hdr" or obj.get("format") != MEMO_FORMAT
            ):
                break
            if obj.get("e") == "memo":
                n += 1
        report.n_valid = n
        if metrics is not None:
            metrics.counter("robust.memo_scan_errors").inc()
        return report
    report.n_valid = len(entries)
    report.n_entries = len(entries)
    report.sealed = True
    spools = header.get("spools")
    if isinstance(spools, dict):
        report.spools = [
            os.path.basename(str(desc.get("spool", "")))
            for desc in spools.values()
            if isinstance(desc, dict)
        ]
    if metrics is not None:
        metrics.counter("robust.memo_scans_clean").inc()
    return report


def salvage_memo(path: str, out: str, metrics=None) -> MemoScanReport:
    """Recover the longest valid prefix of a damaged manifest into a
    freshly sealed one at ``out``.  A salvaged memo is merely smaller —
    every surviving entry is still integrity-checked against the spool
    identity at load time, so loss is a cold miss, never a wrong
    answer.  Returns the scan report of the *source*."""
    path = _resolve_manifest_path(path)
    report = scan_memo(path, metrics=metrics)
    try:
        lines = _read_lines(path)
    except OSError:
        lines = []
    kept: List[str] = []
    for i, line in enumerate(lines):
        try:
            obj = _verify_line(line, i, path)
        except MemoCorruptionError:
            break
        if obj.get("e") == "seal":
            break
        if i == 0:
            if obj.get("e") != "hdr" or obj.get("format") != MEMO_FORMAT:
                break
        elif obj.get("e") != "memo":
            break
        kept.append(line + "\n")
    if not kept:
        # Nothing recoverable: write an empty (but well-formed) doc so
        # downstream loads take a clean cold miss.  Without a header we
        # cannot even name the spool; emit a tombstone header.
        kept = [
            _frame_line(
                {"e": "hdr", "format": MEMO_FORMAT, "salvaged": True}
            )
        ]
    stream_crc = 0
    for line in kept:
        stream_crc = zlib.crc32(line.encode("utf-8"), stream_crc)
    seal_line = _frame_line(
        {"e": "seal", "n": len(kept) - 1, "crc": stream_crc}
    )
    with _aw.atomic_write(out, text=True, encoding="utf-8") as f:
        f.writelines(kept)
        f.write(seal_line)
    if metrics is not None:
        metrics.counter("robust.memo_entries_salvaged").inc(len(kept) - 1)
    return report


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class MemoStore:
    """The durable memo of one translator in one directory.

    Constructed per translation (loading is cheap: one manifest sweep
    plus a spool footer verification); any load failure records an
    ``incremental.invalidations`` tick and starts cold.
    """

    def __init__(
        self,
        directory: str,
        ag: AttributeGrammar,
        plans,
        library=None,
        identity: Optional[str] = None,
        metrics=None,
        tracer=None,
        min_span: int = DEFAULT_MIN_SPAN,
    ):
        self.directory = directory
        self.ag = ag
        self.plans = plans
        self.metrics = metrics
        self.tracer = tracer
        self.min_span = min_span
        self.identity = identity or memo_identity(ag, plans, library)
        os.makedirs(directory, exist_ok=True)
        #: pass_k -> {(hash hex, ctx hex) -> MemoEntry}, previous gen.
        self.entries: Dict[int, Dict[Tuple[str, str], MemoEntry]] = {}
        #: pass_k -> old entries sorted by out_start (carry-forward).
        self._sorted: Dict[int, List[MemoEntry]] = {}
        self._starts: Dict[int, List[int]] = {}
        #: pass_k -> random-access reader over that pass's sealed spool.
        self.readers: Dict[int, RandomAccessReader] = {}
        self._generation = 0
        self.load_error: Optional[MemoCorruptionError] = None
        #: In-process front-end cache (:class:`_Frontend`) of the last
        #: memoized translation through this store, or None.
        self._frontend: Optional[_Frontend] = None
        #: One-shot ``(spool, SubtreeIndex, forward)`` handoff so the
        #: pass-1 session need not re-hash an input stream whose index
        #: the front-end path already holds.
        self._pending: Optional[Tuple[Spool, SubtreeIndex, bool]] = None
        self._load()

    # -- loading -----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MEMO_LOG)

    def _spool_path(self, pass_k: int, generation: int) -> str:
        return os.path.join(
            self.directory, f"pass{pass_k}.g{generation}.spool"
        )

    def _existing_spool_files(self) -> List[Tuple[int, int, str]]:
        """``(pass_k, generation, name)`` for every spool file present."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        out = []
        for name in names:
            m = _GEN_RE.match(name)
            if m:
                out.append((int(m.group(1)), int(m.group(2)), name))
        return sorted(out)

    def _close_readers(self) -> None:
        for reader in self.readers.values():
            try:
                reader.close()
                reader.spool.close()
            except Exception:
                pass
        self.readers = {}

    def _load(self) -> None:
        files = self._existing_spool_files()
        self._generation = max((g for _, g, _ in files), default=0)
        if not os.path.exists(self.manifest_path):
            return
        try:
            header, entries = _read_manifest(self.manifest_path)
            if header.get("identity") != self.identity:
                raise MemoCorruptionError(
                    "memo manifest was written by a different grammar, "
                    "plan set, or library (identity mismatch)",
                    path=self.manifest_path,
                    reason="identity",
                )
            generation = header.get("generation")
            spools = header.get("spools")
            if not isinstance(generation, int) or not isinstance(spools, dict):
                raise MemoCorruptionError(
                    "memo header misses its generation/spools fields",
                    path=self.manifest_path,
                    reason="header",
                )
            readers: Dict[int, RandomAccessReader] = {}
            try:
                for key, desc in spools.items():
                    pass_k = int(key)
                    spool_path = os.path.join(
                        self.directory,
                        os.path.basename(desc.get("spool", "")),
                    )
                    try:
                        spool = DiskSpool.open(
                            spool_path, channel="memo.splice",
                            tracer=self.tracer, metrics=self.metrics,
                        )
                    except Exception as exc:
                        raise MemoCorruptionError(
                            f"memo splice spool for pass {pass_k} failed "
                            f"verification: {exc}",
                            path=spool_path,
                            reason="spool",
                        ) from exc
                    if (
                        spool.n_records != desc.get("n_records")
                        or spool.data_bytes != desc.get("data_bytes")
                        or spool._stream_crc != desc.get("stream_crc")
                    ):
                        spool.close()
                        raise MemoCorruptionError(
                            f"memo splice spool for pass {pass_k} does not "
                            "match the sealed manifest (stale or swapped "
                            "generation)",
                            path=spool_path,
                            reason="stale",
                        )
                    readers[pass_k] = RandomAccessReader(spool)
                for i, entry in enumerate(entries):
                    reader = readers.get(entry.pass_k)
                    if reader is None or entry.out_end > reader.spool.n_records:
                        raise MemoCorruptionError(
                            f"memo entry {i + 1} range [{entry.out_start}, "
                            f"{entry.out_end}) of pass {entry.pass_k} "
                            "overruns (or misses) its sealed spool",
                            record_index=i + 1,
                            path=self.manifest_path,
                            reason="range",
                        )
            except MemoCorruptionError:
                for reader in readers.values():
                    try:
                        reader.close()
                        reader.spool.close()
                    except Exception:
                        pass
                raise
            self.readers = readers
            self._generation = max(self._generation, generation)
            self._adopt_entries(entries)
            if self.metrics is not None:
                self.metrics.counter("incremental.entries_loaded").inc(
                    len(entries)
                )
        except MemoCorruptionError as exc:
            # Silent cold miss: a damaged memo never fails a translation.
            self.load_error = exc
            self.entries = {}
            self._sorted = {}
            self._starts = {}
            self.readers = {}
            if self.metrics is not None:
                self.metrics.counter("incremental.invalidations").inc()
            if self.tracer is not None:
                self.tracer.instant(
                    "incremental.invalidated", cat="robust", reason=exc.reason
                )

    def _adopt_entries(self, entries: Iterable[MemoEntry]) -> None:
        self.entries = {}
        self._sorted = {}
        self._starts = {}
        for entry in entries:
            self.entries.setdefault(entry.pass_k, {})[entry.key] = entry
        for pass_k, table in self.entries.items():
            ordered = sorted(table.values(), key=lambda e: e.out_start)
            self._sorted[pass_k] = ordered
            self._starts[pass_k] = [e.out_start for e in ordered]

    # -- carry-forward -----------------------------------------------------

    def entries_within(self, entry: MemoEntry) -> List[MemoEntry]:
        """Old entries of the same pass whose output range nests inside
        ``entry``'s (including ``entry`` itself) — re-emitted, offset,
        into the new generation on a hit so the memo's grain survives
        splicing."""
        starts = self._starts.get(entry.pass_k, [])
        lo = bisect.bisect_left(starts, entry.out_start)
        out: List[MemoEntry] = []
        for nested in self._sorted.get(entry.pass_k, [])[lo:]:
            if nested.out_start >= entry.out_end:
                break
            if nested.out_end <= entry.out_end:
                out.append(nested)
        return out

    # -- front-end reuse ---------------------------------------------------

    def cache_frontend(self, tokens, initial: Spool, forward: bool) -> None:
        """Capture the fresh run's front-end for in-process reuse: the
        token kind sequence, the initial records, and the subtree index
        *with* its structure arrays.  Any failure (or an input above
        :data:`_FRONTEND_BYTE_CAP`) just leaves the cache empty — the
        next run parses from scratch."""
        self._frontend = None
        self._pending = None
        try:
            if getattr(initial, "data_bytes", 0) > _FRONTEND_BYTE_CAP:
                return
            records = list(initial.read_forward())
            builder = _structure_prefix if forward else _structure_postfix
            index, own, parts, parent = builder(records, self.ag)
            leaf_positions = [
                i for i, r in enumerate(records)
                if r[1] is None and not r[3]
            ]
            n_leaf_tokens = sum(1 for t in tokens if t.kind != EOF_SYMBOL)
            if n_leaf_tokens != len(leaf_positions):
                return
            self._frontend = _Frontend(
                tuple(t.kind for t in tokens), records, index, own,
                parts, parent, leaf_positions, forward,
            )
            self._pending = (initial, index, forward)
        except Exception:
            self._frontend = None
            self._pending = None

    def reuse_frontend(
        self, tokens, forward: bool, intrinsic_fn
    ) -> Optional[Spool]:
        """Shape-preserving front-end reuse: when the new token stream
        has the *same kind sequence* as the cached run, the LR parse is
        identical, so the cached initial records stand — only the
        token-derived leaf attributes need recomputing (through the
        translator's ``intrinsic_fn``).  Changed leaves dirty exactly
        their spine, which is rehashed in place of a full sweep.

        Returns the ready initial spool (and arms the one-shot index
        handoff for :meth:`begin_session`), or None when the cache
        cannot serve — the caller parses from scratch."""
        fe = self._frontend
        if fe is None or fe.forward != forward:
            return None
        if tuple(t.kind for t in tokens) != fe.kinds:
            return None
        try:
            leaf_tokens = [t for t in tokens if t.kind != EOF_SYMBOL]
            if len(leaf_tokens) != len(fe.leaf_positions):
                return None
            symbols = self.ag.symbols
            records = fe.records
            dirty: List[int] = []
            patched: Dict[int, tuple] = {}
            # Per-kind intrinsic spec, resolved once per distinct kind:
            # ``Symbol.intrinsic`` filters the attribute table on every
            # access, which is far too hot for a per-leaf loop.
            spec: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
            for pos, token in zip(fe.leaf_positions, leaf_tokens):
                cached = spec.get(token.kind)
                if cached is None:
                    sym = symbols[token.kind]
                    cached = spec[token.kind] = (
                        sym.name,
                        tuple(a.name for a in sym.intrinsic),
                    )
                sym_name, attr_names = cached
                attrs = {
                    name: intrinsic_fn(token, sym_name, name)
                    for name in attr_names
                }
                if attrs != records[pos][2]:
                    dirty.append(pos)
                    patched[pos] = (sym_name, None, attrs, False)
            if dirty:
                records = list(records)
                own = list(fe.own)
                hashes = list(fe.index.hashes)
                for pos in dirty:
                    records[pos] = patched[pos]
                    d = record_digest(patched[pos])
                    own[pos] = d
                    hashes[pos] = d
                _rehash_spine(
                    hashes, own, fe.parts, fe.parent, dirty, forward
                )
                fe = _Frontend(
                    fe.kinds, records, SubtreeIndex(hashes, fe.index.spans),
                    own, fe.parts, fe.parent, fe.leaf_positions, forward,
                )
                self._frontend = fe
            spool = _RecordListSpool(records)
            self._pending = (spool, fe.index, forward)
            if self.metrics is not None:
                self.metrics.counter("incremental.frontend_reuses").inc()
                if dirty:
                    self.metrics.counter("incremental.dirty_leaves").inc(
                        len(dirty)
                    )
            return spool
        except Exception:
            self._frontend = None
            self._pending = None
            return None

    # -- sessions ----------------------------------------------------------

    def begin_session(
        self,
        plan,
        runtime,
        spool_in: Spool,
        read_only: bool = False,
        forward: bool = False,
    ) -> Optional["MemoSession"]:
        """Index one pass's input spool and open a session for it; None
        when indexing fails (memo disabled for this pass, never fatal).
        ``forward=True`` for the prefix-emission first pass, whose
        input is read forward and indexed in prefix order."""
        pending = self._pending
        self._pending = None
        if (
            pending is not None
            and pending[0] is spool_in
            and pending[2] == forward
        ):
            index = pending[1]
        else:
            try:
                indexer = (
                    prefix_subtree_index if forward else postfix_subtree_index
                )
                index = indexer(spool_in.read_forward(), self.ag)
            except Exception:
                if self.metrics is not None:
                    self.metrics.counter("incremental.invalidations").inc()
                return None
        return MemoSession(
            self, plan, runtime, index, read_only=read_only, forward=forward
        )

    # -- sealing -----------------------------------------------------------

    def next_generation(self) -> int:
        return self._generation + 1

    def make_output_spool(
        self, pass_k: int, accountant, channel: str, tracer=None, metrics=None
    ) -> DiskSpool:
        """The durable output spool of pass ``pass_k`` in the *next*
        generation — distinct from the current generation's file, which
        may be spliced from while this one is written.

        When the current generation holds a splice source for this
        pass, the new spool's codec is seeded with a copy of that
        source's name table: every id of the old generation stays
        valid, so hits can splice the still-encoded blobs verbatim
        (no decode, no re-encode)."""
        reader = self.readers.get(pass_k)
        seed = None
        if reader is not None:
            try:
                source = reader.spool
                codec = source._codec
                if codec is None:
                    codec = source._codec = source._load_codec()
                seed = codec.names
            except Exception:
                seed = None
        spool = DiskSpool(
            self._spool_path(pass_k, self.next_generation()),
            accountant,
            channel,
            tracer=tracer,
            metrics=metrics,
            seed_names=seed,
            # Memo spools are cache artifacts: skip the fsync at seal
            # time.  A file torn by power loss fails its stream-CRC
            # check at the next load and the memo degrades to a cold
            # miss — never a wrong translation.
            durable=False,
        )
        if seed is not None:
            # Tag the spool with its seed source so the session can
            # prove the raw splice path is sound for this pairing.
            spool._memo_raw_source = reader
        return spool

    def commit_run(
        self, commits: List[Tuple["MemoSession", Any]]
    ) -> None:
        """Seal the new generation after a completed run: write one
        MEMO1 manifest referencing every pass's fresh spool, adopt it
        all for in-process reuse, drop the old generation's files."""
        generation = self.next_generation()
        spools: Dict[str, Dict[str, Any]] = {}
        entries: List[MemoEntry] = []
        for session, spool_out in commits:
            spool_path = getattr(spool_out, "path", None)
            if spool_path is None or not os.path.exists(spool_path):
                continue
            spools[str(session.pass_k)] = {
                "spool": os.path.basename(spool_path),
                "n_records": spool_out.n_records,
                "data_bytes": spool_out.data_bytes,
                "stream_crc": getattr(spool_out, "_stream_crc", 0),
            }
            entries.extend(session.new_entries.values())
        if not spools:
            return
        header = {
            "e": "hdr",
            "format": MEMO_FORMAT,
            "grammar": self.ag.name,
            "identity": self.identity,
            "generation": generation,
            "spools": spools,
            "min_span": self.min_span,
        }
        # Encode each line exactly once: the seal CRC runs over the same
        # bytes that hit the file (binary mode — no second text-layer
        # encode), and ``fsync=False`` because the manifest, like the
        # spools it references, is a cache: a torn write fails the seal
        # CRC on the next load and reads as a cold miss.
        encoded = [_frame_line(header).encode("utf-8")]
        encoded.extend(e.line().encode("utf-8") for e in entries)
        stream_crc = 0
        for line in encoded:
            stream_crc = zlib.crc32(line, stream_crc)
        encoded.append(
            _frame_line(
                {"e": "seal", "n": len(entries), "crc": stream_crc}
            ).encode("utf-8")
        )
        with _aw.atomic_write(self.manifest_path, fsync=False) as f:
            f.write(b"".join(encoded))
        # Adopt the new generation in-process and retire the old files.
        self._close_readers()
        for pass_k, gen, name in self._existing_spool_files():
            if gen != generation:
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
        self._generation = generation
        self._adopt_entries(entries)
        for session, spool_out in commits:
            spool_path = getattr(spool_out, "path", None)
            if spool_path is None:
                continue
            try:
                spool = DiskSpool.open(
                    spool_path, channel="memo.splice",
                    tracer=self.tracer, metrics=self.metrics,
                )
                self.readers[session.pass_k] = RandomAccessReader(spool)
            except Exception:
                self.readers.pop(session.pass_k, None)
        if self.metrics is not None:
            self.metrics.counter("incremental.entries_written").inc(
                len(entries)
            )

    def disable(self) -> None:
        """Drop all splice state after a read failure mid-run."""
        self._close_readers()
        self.entries = {}
        self._sorted = {}
        self._starts = {}
        if self.metrics is not None:
            self.metrics.counter("incremental.invalidations").inc()

    def close(self) -> None:
        self._close_readers()


class _Token:
    """Miss token: carries what :meth:`MemoSession.leave` needs."""

    __slots__ = ("key", "out_start", "n_skip")

    def __init__(self, key: Tuple[str, str], out_start: int, n_skip: int):
        self.key = key
        self.out_start = out_start
        self.n_skip = n_skip


class MemoSession:
    """One run's view of the memo, attached to pass 1's runtime.

    The evaluators call :meth:`enter_interp`/:meth:`enter_gen` at each
    ``VISIT``; the session decides candidate / hit / miss.  On a hit it
    splices and returns :data:`MEMO_HIT`; on a recordable miss it
    returns a token the matching ``leave_*`` call turns into a new
    memo entry.
    """

    def __init__(
        self,
        store: MemoStore,
        plan,
        runtime,
        index: SubtreeIndex,
        read_only: bool = False,
        forward: bool = False,
    ):
        from repro.evalgen.plan import sanitize

        self.store = store
        self.plan = plan
        self.pass_k = plan.pass_k
        self.runtime = runtime
        self.index = index
        self.read_only = read_only
        self._forward = forward
        self._entries = store.entries.get(plan.pass_k) or {}
        self.groups: List[str] = list(plan.groups)
        self._gen_names = [(g, f"g_{sanitize(g)}") for g in self.groups]
        self._n_total = len(index)
        self._reads = 0
        self.new_entries: Dict[Tuple[str, str], MemoEntry] = {}
        metrics = store.metrics
        if metrics is not None:
            self._c_hits = metrics.counter("incremental.hits")
            self._c_misses = metrics.counter("incremental.misses")
            self._c_records = metrics.counter("incremental.spliced_records")
            self._c_blocks = metrics.counter("incremental.spliced_blocks")
            self._c_spine = metrics.counter("incremental.spine_nodes")
        else:
            self._c_hits = None
            self._c_misses = None
            self._c_records = None
            self._c_blocks = None
            self._c_spine = None
        #: Plain tallies (always kept — the edit-replay smoke and the
        #: benchmark read them without a metrics registry).
        self.hits = 0
        self.misses = 0
        self.spliced_records = 0

    # -- runtime hook ------------------------------------------------------

    def note_get(self, node) -> None:
        """Stamp the node with its spool record index — the index its
        subtree is keyed under.  A backward pass over a postfix spool
        sees record ``n_total - 1 - r`` at read ``r`` (and a subtree is
        keyed at its root record, which a postfix stream puts *last*);
        the forward prefix pass sees record ``r``, the subtree root
        coming *first*."""
        if self._forward:
            node.__dict__["_mi"] = self._reads
        else:
            node.__dict__["_mi"] = self._n_total - 1 - self._reads
        self._reads += 1

    # -- the evaluator-facing API -----------------------------------------

    def enter_interp(self, node, globals_: Dict[str, Any]):
        """Interpretive backend ``VISIT`` hook."""
        return self._enter(node, globals_.get, globals_.__setitem__)

    def leave_interp(self, token, node, globals_: Dict[str, Any]) -> None:
        self._leave(token, node, globals_.get)

    def enter_gen(self, node, ev):
        """Generated backend ``VISIT`` hook (``ev`` is the pass-class
        instance; globals live as its ``g_<group>`` attributes)."""
        if self._gen_names:
            return self._enter(
                node,
                lambda g, _names=dict(self._gen_names), _ev=ev: getattr(
                    _ev, _names[g]
                ),
                lambda g, v, _names=dict(self._gen_names), _ev=ev: setattr(
                    _ev, _names[g], v
                ),
            )
        return self._enter(node, lambda g: None, lambda g, v: None)

    def leave_gen(self, token, node, ev) -> None:
        if token is None:
            return
        names = dict(self._gen_names)
        self._leave(token, node, lambda g: getattr(ev, names[g]))

    # -- core --------------------------------------------------------------

    def _enter(
        self,
        node,
        get_global: Callable[[str], Any],
        set_global: Callable[[str, Any], None],
    ):
        idx = node.__dict__.get("_mi")
        if idx is None or node.is_limb or node.production is None:
            return None
        span = self.index.spans[idx]
        if span < self.store.min_span:
            return None
        ctx = context_fingerprint(
            node.attrs, ((g, get_global(g)) for g in self.groups)
        )
        key = (self.index.hashes[idx].hex(), ctx.hex())
        entry = self._entries.get(key)
        if entry is not None and entry.n_skip == span - 1:
            if self._splice(entry, node, set_global):
                return MEMO_HIT
        if self.read_only and self.runtime.rec is None:
            # Nothing to record into and no provenance to annotate:
            # skip the leave-side bookkeeping entirely.
            return None
        if self._c_spine is not None:
            self._c_spine.inc()
        return _Token(key, self.runtime.out_index(), span - 1)

    def _splice(self, entry: MemoEntry, node, set_global) -> bool:
        """Reuse ``entry`` for ``node``: all fallible reads first, then
        the irreversible skip + splice + state restore."""
        store = self.store
        reader = store.readers.get(self.pass_k)
        if reader is None:
            return False
        runtime = self.runtime
        # Raw fast path: the output spool's codec was seeded from this
        # reader's name table (make_output_spool), so the sealed blobs
        # are valid verbatim — no decode, no re-encode.  Read-only runs
        # (checkpoint/record spools) take the decoding path.
        raw = getattr(runtime.output_spool, "_memo_raw_source", None) is reader
        try:
            post_attrs, post_globals = entry.payload()
            blobs, n_blocks = reader.raw_range(entry.out_start, entry.out_end)
            records = None
            if not raw:
                decode = reader.spool._decode
                records = [decode(blob) for blob in blobs]
        except Exception:
            # Damaged splice source: nothing was consumed yet, so this
            # hit (and every future one this run) degrades to a miss.
            store.disable()
            return False
        runtime.skip_records(entry.n_skip)
        self._reads += entry.n_skip
        out_start = runtime.out_index()
        if raw:
            runtime.splice_blobs(blobs)
        else:
            for record in records:
                runtime.splice_record(record)
        node.attrs = dict(post_attrs)
        for group, value in zip(self.groups, post_globals):
            set_global(group, value)
        rec = runtime.rec
        if rec is not None:
            rec.reuse(node.symbol, entry.n_skip + 1, out_start, entry.out_len)
        self.hits += 1
        self.spliced_records += entry.out_len
        if self._c_hits is not None:
            self._c_hits.inc()
            self._c_records.inc(entry.out_len)
            self._c_blocks.inc(n_blocks)
        if not self.read_only:
            delta = out_start - entry.out_start
            for nested in store.entries_within(entry):
                self.new_entries.setdefault(
                    nested.key, nested.shifted(delta)
                )
        return True

    def _leave(self, token, node, get_global: Callable[[str], Any]) -> None:
        if token is None:
            return
        self.misses += 1
        if self._c_misses is not None:
            self._c_misses.inc()
        if self.read_only:
            return
        out_len = self.runtime.out_index() - token.out_start
        try:
            blob = base64.b64encode(
                pickle.dumps(
                    (
                        dict(node.attrs),
                        [get_global(g) for g in self.groups],
                    ),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            ).decode("ascii")
        except Exception:
            # Unpicklable attribute value: this subtree is simply not
            # memoizable; the translation itself is unaffected.
            return
        self.new_entries.setdefault(
            token.key,
            MemoEntry(
                self.pass_k, token.key[0], token.key[1],
                token.out_start, out_len, token.n_skip, blob,
            ),
        )
