"""Alternating-pass evaluability analysis (§II, §III).

LINGUIST-86 "generates evaluators only for those attribute grammars
that can be evaluated in alternating passes" [J] [JW] [PJ1].  Overlay 4
"analyzes the attribute dependencies … to determine the alternating
pass evaluability"; this package is that overlay.

:mod:`repro.passes.schedule` simulates the Figure-3 read/visit/write
skeleton of one production-procedure for one pass, greedily placing
semantic-function evaluations as early as their dependencies allow —
the paper's loosened ordering that evaluates "some attributes earlier
than the ordered ASE of [JP1]".  :mod:`repro.passes.partition` iterates
the simulation, deferring unschedulable attributes to later passes
until a fixpoint, and rejects grammars that exceed the pass bound.
"""

from repro.passes.schedule import (
    Direction,
    ScheduleStep,
    StepKind,
    direction_of_pass,
    schedule_production,
)
from repro.passes.partition import PassAssignment, assign_passes
from repro.passes.fusion import FusionResult, fuse_assignment
from repro.passes.report import render_pass_report

__all__ = [
    "Direction",
    "ScheduleStep",
    "StepKind",
    "direction_of_pass",
    "schedule_production",
    "PassAssignment",
    "assign_passes",
    "FusionResult",
    "fuse_assignment",
    "render_pass_report",
]
