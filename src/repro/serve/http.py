"""Dependency-free HTTP/1.1 front end for the translation service.

The repo ships no web framework and the container installs none, so
this is a deliberately small hand-rolled server on asyncio streams —
enough protocol for load generators, health probes, and ``curl``:

* ``POST /translate?grammar=NAME`` — body is the input text; a 200
  response body is the rendered root attributes, byte-identical to
  ``repro run`` / ``repro batch`` output for the same input.
* ``GET /healthz`` — liveness + per-grammar breaker/queue state.
* ``GET /stats``  — the full ``repro.obs`` metrics snapshot as JSON.

Typed service failures map onto status codes::

    ServerOverloaded    429  (Retry-After header)
    GrammarUnavailable  503  (Retry-After header)
    TranslationTimeout  408
    WorkerCrashed       500
    per-input error     422  (ok=False ServeResult: bad input text)

Every response carries ``X-Request-Id`` when a request was admitted.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    GrammarUnavailable,
    ServeError,
    ServerOverloaded,
    TranslationTimeout,
    WorkerCrashed,
)
from repro.serve.daemon import TranslationServer

__all__ = ["HttpFrontend"]

#: Largest accepted request body (1 MiB) — admission control starts at
#: the socket.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpFrontend:
    """Serves a :class:`~repro.serve.daemon.TranslationServer` over TCP."""

    def __init__(self, server: TranslationServer, host: str, port: int):
        self.server = server
        self.host = host
        self.port = port
        self._tcp: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port) — port 0
        resolves to the kernel-assigned port."""
        self._tcp = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._tcp.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None

    # -- protocol ----------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                status, out_headers, payload = await self._route(
                    method, target, headers, body
                )
                keep_alive = (
                    headers.get("connection", "keep-alive") != "close"
                    # An oversized body (413) is left unread on the
                    # socket; reusing the connection would parse those
                    # bytes as the next request head, so close instead.
                    and body is not None
                )
                await self._respond(
                    writer, status, out_headers, payload, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return method, target, headers, None  # routed to 413
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _route(self, method, target, headers, body):
        url = urlsplit(target)
        path = url.path
        if body is None:
            return 413, {}, _json_err("PayloadTooLarge", "body too large")
        if path == "/healthz" and method == "GET":
            health = self.server.health()
            # Degraded (some grammar impaired, or low-disk admission
            # pause) still answers 200 — the daemon is alive and will
            # recover; 503 is reserved for "every grammar refuses work"
            # and for draining, the states a load balancer should route
            # around.
            status = 200 if health["status"] in ("ok", "degraded") else 503
            return status, {}, _json(health)
        if path == "/stats" and method == "GET":
            return 200, {}, _json(self._stats())
        if path == "/translate" and method == "POST":
            return await self._translate(url, body)
        return 404, {}, _json_err("NotFound", f"no route {method} {path}")

    async def _translate(self, url, body: bytes):
        params = parse_qs(url.query)
        grammars = sorted(self.server.services)
        grammar = params.get("grammar", [None])[0]
        if grammar is None:
            if len(grammars) != 1:
                return 400, {}, _json_err(
                    "BadRequest",
                    f"?grammar= is required (serving {grammars})",
                )
            grammar = grammars[0]
        timeout = None
        if "timeout" in params:
            try:
                timeout = float(params["timeout"][0])
            except ValueError:
                return 400, {}, _json_err("BadRequest", "bad timeout value")
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            return 400, {}, _json_err("BadRequest", "body is not UTF-8")
        try:
            result = await self.server.submit(grammar, text, timeout=timeout)
        except ServerOverloaded as exc:
            return (
                429,
                {"Retry-After": _retry_after(exc.retry_after)},
                _json_err(type(exc).__name__, str(exc)),
            )
        except GrammarUnavailable as exc:
            return (
                503,
                {"Retry-After": _retry_after(exc.retry_after)},
                _json_err(type(exc).__name__, str(exc)),
            )
        except TranslationTimeout as exc:
            return 408, {}, _json_err(type(exc).__name__, str(exc))
        except (WorkerCrashed, ServeError) as exc:
            return 500, {}, _json_err(type(exc).__name__, str(exc))
        rid = {"X-Request-Id": str(result.request_id)}
        if not result.ok:
            return (
                422,
                rid,
                _json_err(result.error_type or "?", result.error or ""),
            )
        return (
            200,
            dict(rid, **{"Content-Type": "text/plain; charset=utf-8"}),
            result.output.encode("utf-8"),
        )

    def _stats(self):
        metrics = self.server.metrics
        if metrics is None:
            return {}
        from repro.obs.export import jsonable_snapshot

        return jsonable_snapshot(metrics)

    async def _respond(
        self, writer, status, headers, payload: bytes, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        base = {
            "Content-Type": "application/json; charset=utf-8",
            "Content-Length": str(len(payload)),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        base.update(headers or {})
        head.extend(f"{k}: {v}" for k, v in base.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()


def _json(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def _json_err(error_type: str, message: str) -> bytes:
    return _json({"error": error_type, "message": message})


def _retry_after(seconds: float) -> str:
    """HTTP Retry-After wants whole seconds; always advise >= 1."""
    return str(max(1, int(seconds + 0.999)))
