"""The asyncio translation service: warm builds, supervised dispatch.

One :class:`TranslationServer` owns, per grammar:

* a **warm build** — the daemon constructs the grammar's translator
  through the persistent build cache exactly once at startup (sealing
  the artifacts workers rehydrate from), so no request ever pays
  overlay work;
* a **bounded queue** — admission control at the door: a full queue
  raises :class:`~repro.errors.ServerOverloaded` with ``retry_after``
  instead of buffering without bound;
* a **circuit breaker** — persistent infrastructure failures degrade
  the grammar to *unavailable* rather than poisoning the worker pool;
* **supervised workers** — one dispatcher task per
  :class:`~repro.serve.workers.WorkerHandle`; a worker that crashes,
  is OOM-killed, or hangs past its heartbeat is restarted with
  exponential backoff while the in-flight request is re-dispatched
  (bounded retries — translation is pure, so re-dispatch is idempotent
  by construction) or failed fast;
* the **request journal** — every admitted/completed/failed transition
  is a CRC-framed line in the SRVJ1 journal, sealed on graceful drain.

Lifecycle: ``await start()`` → ``submit()`` per request →
``request_shutdown()`` (SIGTERM) → ``run()`` drains (stop admitting,
finish in-flight up to ``drain_timeout``, checkpoint the journal) and
returns exit code 0.  See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    GrammarUnavailable,
    ReproError,
    ServeError,
    ServerOverloaded,
    TranslationTimeout,
    WorkerCrashed,
)
from repro.serve.admission import Backoff, CircuitBreaker, Deadline
from repro.serve.journal import RequestJournal
from repro.serve.workers import WorkerHandle

__all__ = [
    "GrammarService",
    "Request",
    "ServeConfig",
    "ServeResult",
    "TranslationServer",
]


@dataclass
class ServeConfig:
    """Tunables of one daemon run (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: Optional[int] = 0
    workers: int = 2
    queue_depth: int = 16
    request_timeout: float = 30.0
    drain_timeout: float = 10.0
    journal_dir: Optional[str] = None
    heartbeat_timeout: float = 10.0
    max_retries: int = 1
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 5.0
    backend: str = "generated"
    fsync_every_done: bool = False
    #: Free-space governance (``repro serve --disk-low-mb/--disk-high-mb``):
    #: the daemon degrades every grammar when free bytes under the
    #: journal directory drop below ``disk_low_bytes`` and recovers only
    #: above ``disk_high_bytes`` (hysteresis).  0 disables the loop.
    disk_low_bytes: int = 0
    disk_high_bytes: int = 0
    governance_interval: float = 0.5
    #: Build-cache location + size cap: swept by the startup doctor
    #: pass and shrunk (LRU) when a low-disk trip needs space back.
    cache_dir: Optional[str] = None
    cache_max_bytes: int = 0
    #: Run a ``repro doctor --repair`` sweep over the journal and cache
    #: directories before serving, so a crashed predecessor's debris is
    #: classified and cleaned before new artifacts land next to it.
    startup_doctor: bool = True
    #: Export each grammar's built artifacts into a shared-memory plane
    #: (:mod:`repro.buildcache.shm`) so workers — including every
    #: supervised *restart* — attach zero-copy instead of rehydrating
    #: the build cache per process.  ``repro serve --no-shm`` disables.
    use_shm: bool = True


@dataclass
class Request:
    """One admitted translation request."""

    id: int
    grammar: str
    text: str
    deadline: Deadline
    future: "asyncio.Future[ServeResult]"
    attempts: int = 0
    admitted_at: float = field(default_factory=time.monotonic)


@dataclass
class ServeResult:
    """Outcome of one request.

    ``ok`` distinguishes per-input translation failures (a syntax error
    in the *request*, reported in ``error_type``/``error``) from
    infrastructure failures, which raise typed exceptions instead.
    ``output`` is rendered exactly as ``repro run``/``repro batch``
    render root attributes, so served bytes are comparable across every
    execution path.
    """

    request_id: int
    grammar: str
    ok: bool
    output: str = ""
    error_type: Optional[str] = None
    error: Optional[str] = None
    seconds: float = 0.0
    worker_id: Optional[int] = None
    retries: int = 0


class GrammarService:
    """Everything the daemon holds for one grammar (see module doc)."""

    def __init__(self, name: str, spec, config: ServeConfig, metrics=None):
        self.name = name
        self.spec = spec
        self.config = config
        self.metrics = metrics
        self.queue: "asyncio.Queue[Request]" = asyncio.Queue(
            maxsize=max(1, config.queue_depth)
        )
        self.breaker = CircuitBreaker(
            grammar=name,
            failure_threshold=config.breaker_threshold,
            reset_seconds=config.breaker_reset_seconds,
            metrics=metrics,
        )
        self.workers: List[WorkerHandle] = []
        self.backoffs: Dict[int, Backoff] = {}
        self.busy: Dict[int, bool] = {}
        #: worker id -> the request it currently holds (drain failure
        #: path resolves these if the drain deadline cuts them off).
        self.in_flight: Dict[int, Request] = {}
        #: EWMA of request service time, for Retry-After estimates.
        self.ewma_seconds = 0.05
        self.translator = None  # the daemon-side warm instance
        #: Shared-memory artifact plane exported from the warm instance
        #: (repro.buildcache.shm.ArtifactPlane), unlinked at drain.
        self.plane = None
        #: The spec workers actually start from: ``spec`` plus the
        #: plane's segment name, so restarts attach instead of rebuild.
        self.worker_spec = spec

    def observe_seconds(self, seconds: float) -> None:
        self.ewma_seconds = 0.8 * self.ewma_seconds + 0.2 * max(
            seconds, 1e-4
        )

    def retry_after(self) -> float:
        """Estimate of when queue capacity frees up."""
        depth = self.queue.qsize() + sum(1 for b in self.busy.values() if b)
        per_slot = self.ewma_seconds / max(1, len(self.workers))
        return round(max(0.05, depth * per_slot), 3)


class TranslationServer:
    """The long-lived service; see the module docstring for lifecycle."""

    def __init__(
        self,
        specs: Dict[str, Any],
        config: Optional[ServeConfig] = None,
        metrics=None,
    ):
        self.config = config or ServeConfig()
        self.metrics = metrics
        self.services: Dict[str, GrammarService] = {
            name: GrammarService(name, spec, self.config, metrics)
            for name, spec in specs.items()
        }
        self.journal: Optional[RequestJournal] = None
        self.draining = False
        #: Low-disk degraded mode (flipped by the governance loop):
        #: translations get 503 + Retry-After, /healthz and /stats keep
        #: answering, the journal is suspended until recovery.
        self.degraded = False
        self.watermark = None  # DiskWatermark when governance is on
        self.doctor_report = None  # startup sweep outcome, for /stats
        self._drain_requested: Optional[asyncio.Event] = None
        self._next_id = 0
        self._tasks: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Warm every grammar, start workers, dispatchers, supervisor."""
        if self._started:
            return
        cfg = self.config
        if cfg.startup_doctor:
            sweep = [
                d
                for d in (cfg.journal_dir, cfg.cache_dir)
                if d and os.path.isdir(d)
            ]
            if sweep:
                from repro.doctor import run_doctor

                self.doctor_report = run_doctor(
                    sweep, repair=True, metrics=self.metrics
                )
        if cfg.journal_dir:
            self.journal = RequestJournal(
                cfg.journal_dir,
                grammars=sorted(self.services),
                metrics=self.metrics,
                fsync_every_done=cfg.fsync_every_done,
            )
        total_workers = max(1, cfg.workers) * len(self.services)
        self._executor = ThreadPoolExecutor(
            max_workers=total_workers + 4,
            thread_name_prefix="repro-serve-dispatch",
        )
        self._drain_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for service in self.services.values():
            # The warm per-grammar instance: builds (or rehydrates) the
            # whole artifact set through the cache ONCE, so workers and
            # restarts rehydrate instead of rebuilding.
            from repro.batch import build_batch_translator

            service.translator = await loop.run_in_executor(
                self._executor,
                lambda s=service: build_batch_translator(
                    s.spec, metrics=self.metrics
                ),
            )
            if cfg.use_shm:
                # Seal the warm artifacts into a shared-memory plane:
                # every worker start — and every supervised *restart* —
                # becomes a near-instant zero-copy attach instead of a
                # per-process cache rehydration.  Export failure is
                # non-fatal (workers fall back to the cache).
                import dataclasses as _dataclasses

                from repro.buildcache.shm import export_translator_plane

                try:
                    service.plane = export_translator_plane(
                        service.translator, metrics=self.metrics
                    )
                    service.worker_spec = _dataclasses.replace(
                        service.spec, shm_plane=service.plane.name
                    )
                except ReproError:
                    if self.metrics is not None:
                        self.metrics.counter(
                            "batch.shm.export_failed"
                        ).inc()
                    service.plane = None
                    service.worker_spec = service.spec
            for wid in range(max(1, cfg.workers)):
                handle = WorkerHandle(
                    service.worker_spec, worker_id=wid, metrics=self.metrics
                )
                handle.start()
                service.workers.append(handle)
                service.backoffs[wid] = Backoff()
                service.busy[wid] = False
                self._tasks.append(
                    asyncio.create_task(
                        self._dispatch_loop(service, handle),
                        name=f"dispatch-{service.name}-{wid}",
                    )
                )
        self._tasks.append(
            asyncio.create_task(self._supervise_loop(), name="supervisor")
        )
        if cfg.disk_low_bytes > 0:
            from repro.governance import DiskWatermark

            self.watermark = DiskWatermark(
                path=cfg.journal_dir or ".",
                low_bytes=cfg.disk_low_bytes,
                high_bytes=max(cfg.disk_high_bytes, cfg.disk_low_bytes),
                metrics=self.metrics,
            )
            self._tasks.append(
                asyncio.create_task(
                    self._governance_loop(), name="governance"
                )
            )
        self._started = True

    def request_shutdown(self) -> None:
        """Stop admitting; :meth:`run`/:meth:`drain` finish the rest.
        Safe to call from a signal handler."""
        self.draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Finish in-flight work, seal the journal, stop the workers.

        Returns True when every queued request finished inside the
        deadline; on a deadline overrun the stragglers are failed fast
        (journaled as failures) and False is returned.
        """
        self.draining = True
        timeout = self.config.drain_timeout if timeout is None else timeout
        joins = [
            asyncio.ensure_future(service.queue.join())
            for service in self.services.values()
        ]
        clean = True
        try:
            await asyncio.wait_for(asyncio.gather(*joins), timeout)
        except asyncio.TimeoutError:
            clean = False
            for j in joins:
                j.cancel()
        # Fail whatever is still queued or in flight (deadline overrun)
        # BEFORE cancelling the dispatchers: a cancelled dispatcher's
        # finally block pops its in_flight entry, so resolving after
        # _stop_tasks() would miss every mid-execution request — its
        # client would await a future nobody ever sets and the journal
        # would seal with a 'req' record carrying no terminal record.
        # No await separates this loop from _stop_tasks(), so a
        # dispatcher cannot interleave and complete a request that was
        # just failed here.
        for service in self.services.values():
            for request in list(service.in_flight.values()):
                self._fail(
                    service,
                    request,
                    ServeError(
                        "daemon drained before this request finished"
                    ),
                    journal_type="DrainTimeout",
                )
            service.in_flight.clear()
            while True:
                try:
                    request = service.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._fail(
                    service,
                    request,
                    ServeError(
                        "daemon drained before this request was served"
                    ),
                    journal_type="DrainTimeout",
                )
                service.queue.task_done()
        await self._stop_tasks()
        for service in self.services.values():
            for handle in service.workers:
                handle.stop()
            # Workers are down: the shared artifact plane has no
            # readers left.  Unlink so no segment outlives the drain
            # (the shm atexit registry is only the crash safety net).
            if service.plane is not None:
                service.plane.unlink()
                service.plane = None
        if self.journal is not None:
            self.journal.seal()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.metrics is not None:
            self.metrics.counter("serve.drains").inc()
            if not clean:
                self.metrics.counter("serve.drain_deadline_overruns").inc()
        return clean

    async def run(self) -> int:
        """Serve until :meth:`request_shutdown`, then drain.  Returns
        the process exit code (0 = clean drain)."""
        await self.start()
        assert self._drain_requested is not None
        await self._drain_requested.wait()
        await self.drain()
        # A drain-deadline overrun fails the stragglers fast but is
        # still a *graceful* exit: the journal is sealed and says so.
        return 0

    async def _stop_tasks(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    # -- admission ---------------------------------------------------------

    async def submit(
        self,
        grammar: str,
        text: str,
        timeout: Optional[float] = None,
    ) -> ServeResult:
        """Admit one request and await its outcome.

        Raises :class:`~repro.errors.ServerOverloaded` (queue full or
        draining), :class:`~repro.errors.GrammarUnavailable` (breaker
        open), :class:`~repro.errors.TranslationTimeout`, or
        :class:`~repro.errors.WorkerCrashed` (retries exhausted).
        Per-input translation errors come back as a ``ServeResult``
        with ``ok=False`` — the service worked; the input was bad.
        """
        service = self.services.get(grammar)
        if service is None:
            raise ServeError(
                f"unknown grammar {grammar!r}; serving "
                f"{sorted(self.services)}"
            )
        if self.draining:
            self._count("serve.rejected")
            raise ServerOverloaded(
                "daemon is draining (shutdown in progress)",
                retry_after=self.config.drain_timeout,
            )
        if self.degraded:
            # Low-disk degraded mode: refuse new durable work (each
            # admission wants journal bytes) but keep the socket, the
            # health probe, and the stats endpoint fully alive.
            self._count("governance.rejected_degraded")
            raise GrammarUnavailable(
                f"grammar {grammar!r} is degraded: free disk is below "
                "the low watermark (journal suspended; retry shortly)",
                grammar=grammar,
                retry_after=max(1.0, self.config.governance_interval * 2),
            )
        service.breaker.admit()  # raises GrammarUnavailable when open
        self._next_id += 1
        request = Request(
            id=self._next_id,
            grammar=grammar,
            text=text,
            deadline=Deadline(
                self.config.request_timeout if timeout is None else timeout
            ),
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            service.queue.put_nowait(request)
        except asyncio.QueueFull:
            self._count("serve.rejected")
            service.breaker.release_probe()  # a rejected probe resolves
            raise ServerOverloaded(
                f"grammar {grammar!r} queue is full "
                f"({service.queue.maxsize} pending)",
                retry_after=service.retry_after(),
            ) from None
        self._count("serve.admitted")
        if self.journal is not None:
            self.journal.admitted(request.id, grammar, text)
        return await request.future

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(
        self, service: GrammarService, handle: WorkerHandle
    ) -> None:
        while True:
            request = await service.queue.get()
            service.in_flight[handle.worker_id] = request
            try:
                await self._execute(service, handle, request)
            finally:
                service.in_flight.pop(handle.worker_id, None)
                service.queue.task_done()

    async def _execute(
        self, service: GrammarService, handle: WorkerHandle, request: Request
    ) -> None:
        loop = asyncio.get_running_loop()
        backoff = service.backoffs[handle.worker_id]
        while True:
            if request.deadline.expired:
                self._count("serve.timeouts")
                # Queue-wait expiry is a load signal, not a grammar
                # health signal: no breaker failure, but a half-open
                # probe that expired in the queue must resolve.
                service.breaker.release_probe()
                self._fail(
                    service,
                    request,
                    TranslationTimeout(
                        "request deadline expired while queued "
                        f"({request.deadline.seconds:.3g}s)",
                        seconds=request.deadline.seconds,
                    ),
                )
                return
            if not handle.alive:
                await self._restart(service, handle)
            request.attempts += 1
            service.busy[handle.worker_id] = True
            started = time.perf_counter()
            try:
                answer = await loop.run_in_executor(
                    self._executor,
                    handle.call,
                    request.id,
                    request.text,
                    request.deadline.remaining(),
                )
            except TranslationTimeout as exc:
                service.busy[handle.worker_id] = False
                # The worker is wedged on this request: kill it so the
                # slot frees up; a timeout is not retried (the deadline
                # is gone) and does not trip the breaker by itself more
                # than once.
                self._count("serve.timeouts")
                service.breaker.record_failure()
                self._fail(service, request, exc)
                await self._restart(service, handle)
                return
            except WorkerCrashed as exc:
                service.busy[handle.worker_id] = False
                service.breaker.record_failure()
                await self._restart(service, handle)
                if (
                    request.attempts <= self.config.max_retries
                    and not request.deadline.expired
                    and service.breaker.available
                ):
                    self._count("serve.retries")
                    continue  # idempotent by construction: re-dispatch
                self._fail(service, request, exc)
                return
            finally:
                service.busy[handle.worker_id] = False
            seconds = time.perf_counter() - started
            backoff.reset()
            service.observe_seconds(seconds)
            self._finish(service, handle, request, answer, seconds)
            return

    async def _restart(
        self, service: GrammarService, handle: WorkerHandle
    ) -> None:
        """Restart one worker with exponential backoff (supervisor and
        dispatcher share this path; the counter lives in the handle)."""
        delay = service.backoffs[handle.worker_id].next_delay()
        if delay > 0:
            await asyncio.sleep(delay)
        handle.restart()

    def _finish(
        self,
        service: GrammarService,
        handle: WorkerHandle,
        request: Request,
        answer,
        seconds: float,
    ) -> None:
        from repro.evalgen.runtime import render_root_attrs

        if request.future.done():
            # drain() already failed this request (the worker answered
            # in the same tick the dispatcher was cancelled): the client
            # holds a DrainTimeout and the journal its terminal record —
            # exactly-once accounting means this late answer is dropped.
            return
        _, ok, attrs, _, error_type, error, _ = answer
        if ok:
            output = "\n".join(render_root_attrs(attrs)) + "\n"
            result = ServeResult(
                request_id=request.id,
                grammar=service.name,
                ok=True,
                output=output,
                seconds=seconds,
                worker_id=handle.worker_id,
                retries=request.attempts - 1,
            )
            service.breaker.record_success()
            self._count("serve.completed")
            if self.metrics is not None:
                self.metrics.histogram("serve.request.seconds").observe(
                    seconds
                )
            if self.journal is not None:
                self.journal.completed(
                    request.id,
                    service.name,
                    output,
                    seconds,
                    worker_id=handle.worker_id,
                    retries=request.attempts - 1,
                )
        else:
            # Per-input failure: the *service* worked, so the breaker
            # records success; the client gets the typed error back.
            result = ServeResult(
                request_id=request.id,
                grammar=service.name,
                ok=False,
                error_type=error_type,
                error=error,
                seconds=seconds,
                worker_id=handle.worker_id,
                retries=request.attempts - 1,
            )
            service.breaker.record_success()
            self._count("serve.input_errors")
            if self.journal is not None:
                self.journal.failed(
                    request.id, service.name, error_type or "?",
                    error or "", seconds,
                )
        if not request.future.done():
            request.future.set_result(result)

    def _fail(
        self,
        service: GrammarService,
        request: Request,
        exc: ServeError,
        journal_type: Optional[str] = None,
    ) -> None:
        if request.future.done():
            return  # already resolved elsewhere: keep the journal exactly-once
        self._count("serve.failed")
        if self.journal is not None:
            self.journal.failed(
                request.id,
                service.name,
                journal_type or type(exc).__name__,
                str(exc),
            )
        if not request.future.done():
            request.future.set_exception(exc)

    # -- supervision -------------------------------------------------------

    async def _supervise_loop(self) -> None:
        """Restart idle workers that died or stopped heartbeating.

        Busy workers are owned by their dispatcher (whose blocking call
        notices death within one poll interval); the supervisor covers
        the *idle* half: a worker OOM-killed or frozen between requests
        is restarted here before the next request would hit it.
        """
        interval = max(0.2, self.config.heartbeat_timeout / 4)
        # One restart task per worker, never awaited inline: a flapping
        # worker's exponential-backoff sleep (up to seconds) must not
        # stall heartbeat scanning and restarts of every other worker.
        restarts: Dict[Tuple[str, int], asyncio.Task] = {}
        try:
            while True:
                await asyncio.sleep(interval)
                for service in self.services.values():
                    for handle in service.workers:
                        key = (service.name, handle.worker_id)
                        pending = restarts.get(key)
                        if pending is not None:
                            if not pending.done():
                                continue  # restart/backoff in progress
                            restarts.pop(key)
                            if not pending.cancelled():
                                # A failed respawn leaves the worker
                                # dead; the next scan retries it.
                                pending.exception()
                        if service.busy.get(handle.worker_id):
                            continue
                        hung = (
                            handle.heartbeat_age()
                            > self.config.heartbeat_timeout
                        )
                        if handle.alive and not hung:
                            continue
                        if hung and handle.alive:
                            self._count("serve.heartbeat_kills")
                            handle.kill()
                        restarts[key] = asyncio.create_task(
                            self._restart(service, handle),
                            name=f"restart-{key[0]}-{key[1]}",
                        )
        finally:
            for task in restarts.values():
                task.cancel()
            if restarts:
                await asyncio.gather(
                    *restarts.values(), return_exceptions=True
                )

    # -- governance --------------------------------------------------------

    async def _governance_loop(self) -> None:
        """Probe free space and flip degraded mode with hysteresis.

        A trip below the low watermark suspends the journal (later
        completions are counted, not written; the eventual resume writes
        an explicit gap marker so the stream stays verifiable), starts
        refusing translations with 503 + Retry-After, and shrinks the
        build cache to its cap to help the disk recover.  Climbing back
        above the high watermark resumes journaling and admission.
        """
        assert self.watermark is not None
        interval = max(0.05, self.config.governance_interval)
        while True:
            await asyncio.sleep(interval)
            was = self.degraded
            now = self.watermark.check()
            if now and not was:
                self.degraded = True
                self._count("governance.serve_degraded")
                if self.journal is not None:
                    self.journal.suspend()
                if self.config.cache_dir and self.config.cache_max_bytes > 0:
                    from repro.buildcache import BuildCache
                    from repro.governance import evict_cache

                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        self._executor,
                        lambda: evict_cache(
                            BuildCache(self.config.cache_dir),
                            self.config.cache_max_bytes,
                            metrics=self.metrics,
                        ),
                    )
            elif was and not now:
                if self.journal is None or self.journal.resume():
                    self.degraded = False
                    self._count("governance.serve_recovered")
                # else: the gap marker itself would not land — stay
                # degraded and retry on the next probe.

    # -- introspection -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` body: liveness plus per-grammar state.

        Each grammar reports ``state`` (``ok`` / ``degraded`` /
        ``unavailable``) with machine-readable ``reasons``; the
        top-level ``status`` is ``ok``, ``degraded`` (some grammar
        impaired), ``unavailable`` (every grammar refusing work — the
        only non-draining case /healthz maps to 503), or ``draining``.
        """
        grammars: Dict[str, Any] = {}
        for name, service in self.services.items():
            reasons = []
            if service.breaker.state == CircuitBreaker.OPEN:
                reasons.append("breaker-open")
            if self.degraded:
                reasons.append("low-disk")
            if not any(h.alive for h in service.workers):
                reasons.append("no-workers-alive")
            if "breaker-open" in reasons or "no-workers-alive" in reasons:
                state = "unavailable"
            elif reasons:
                state = "degraded"
            else:
                state = "ok"
            grammars[name] = {
                "state": state,
                "reasons": reasons,
                "breaker": service.breaker.state,
                "queued": service.queue.qsize(),
                "queue_depth": service.queue.maxsize,
                "workers_alive": sum(1 for h in service.workers if h.alive),
                "workers": len(service.workers),
                "retry_after": service.retry_after(),
            }
        if self.draining:
            status = "draining"
        elif grammars and all(
            g["state"] == "unavailable" for g in grammars.values()
        ):
            status = "unavailable"
        elif any(g["state"] != "ok" for g in grammars.values()):
            status = "degraded"
        else:
            status = "ok"
        body: Dict[str, Any] = {
            "status": status,
            "degraded": self.degraded,
            "grammars": grammars,
        }
        if self.watermark is not None:
            body["disk"] = {
                "free_bytes": self.watermark.free_bytes(),
                "low_bytes": self.watermark.low_bytes,
                "high_bytes": self.watermark.high_bytes,
                "trips": self.watermark.trips,
                "recoveries": self.watermark.recoveries,
            }
        if self.journal is not None:
            body["journal"] = {
                "suspended": self.journal.suspended,
                "lost_records": self.journal.lost_records,
            }
        return body

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()


def specs_for_grammars(
    grammar_files: Sequence[str],
    cache_dir: str,
    direction: str = "r2l",
    backend: str = "generated",
    memo_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the ``{grammar_name: WorkerSpec}`` map the server needs
    from ``.ag`` file paths (grammar name = file stem, as the batch CLI
    resolves scanners).  ``memo_dir`` roots a per-grammar incremental
    memo (``memo_dir/<grammar>``); each worker slot then keeps its own
    subdirectory under that, so repeated requests against a grammar are
    served warm (clean subtrees spliced from the sealed memo)."""
    import os

    from repro.batch import WorkerSpec

    specs: Dict[str, Any] = {}
    for path in grammar_files:
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as f:
            source = f.read()
        specs[name] = WorkerSpec(
            source=source,
            filename=path,
            grammar_name=name,
            direction=direction,
            cache_dir=cache_dir,
            backend=backend,
            memo_dir=os.path.join(memo_dir, name) if memo_dir else None,
        )
    return specs
