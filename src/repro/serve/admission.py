"""Admission control, deadlines, backoff, and the circuit breaker.

Pure, clock-injectable robustness primitives — nothing here knows
about asyncio or subprocesses, so every state transition is unit
testable with a fake clock:

* :class:`Deadline` — a per-request time budget (``remaining()`` /
  ``expired``) carved out once at admission and consumed by every
  later stage (queue wait, worker execution, retries).
* :class:`Backoff` — bounded exponential delay with deterministic
  jitter, used by the supervisor between worker restarts.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  automaton over *infrastructure* failures (worker crashes, timeouts
  — never per-input errors like a syntax error, which are successful
  service): ``failure_threshold`` consecutive failures open the
  breaker for ``reset_seconds``; after that one probe request is
  admitted (half-open); a probe success closes the breaker, a probe
  failure re-opens it with doubled (capped) reset time.

The admission decision itself lives with the queue: the daemon's
per-grammar queues are bounded, and a full queue raises a typed
:class:`~repro.errors.ServerOverloaded` carrying ``retry_after`` —
requests are rejected at the door, never buffered without bound.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import GrammarUnavailable

__all__ = ["Backoff", "CircuitBreaker", "Deadline"]


class Deadline:
    """A monotonic time budget for one request."""

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.seconds = seconds
        self._clock = clock
        self._expires = None if seconds is None else clock() + seconds

    def remaining(self) -> Optional[float]:
        """Seconds left (``None`` = unbounded, ``0.0`` = expired)."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - self._clock())

    @property
    def expired(self) -> bool:
        return self._expires is not None and self._clock() >= self._expires


class Backoff:
    """Bounded exponential backoff with deterministic per-step jitter.

    ``delay(n)`` is the wait before restart attempt ``n`` (0-based):
    ``base * factor**n`` capped at ``cap``, plus a small deterministic
    jitter derived from ``n`` so concurrent supervisors do not restart
    in lockstep.  A supervisor calls :meth:`reset` after a worker
    survives ``healthy_after`` seconds.
    """

    def __init__(
        self,
        base: float = 0.1,
        factor: float = 2.0,
        cap: float = 5.0,
        healthy_after: float = 30.0,
    ):
        self.base = base
        self.factor = factor
        self.cap = cap
        self.healthy_after = healthy_after
        self.attempt = 0

    def delay(self, attempt: Optional[int] = None) -> float:
        n = self.attempt if attempt is None else attempt
        raw = min(self.cap, self.base * (self.factor ** n))
        jitter = raw * 0.1 * (((n * 2654435761) % 97) / 97.0)
        return raw + jitter

    def next_delay(self) -> float:
        """The delay for the current attempt; advances the counter."""
        d = self.delay()
        self.attempt += 1
        return d

    def reset(self) -> None:
        self.attempt = 0


class CircuitBreaker:
    """Closed → open → half-open automaton for one grammar.

    States (exported verbatim in ``serve.breaker_state``):

    * ``closed`` — normal service; consecutive infrastructure failures
      are counted, successes reset the count.
    * ``open`` — :meth:`admit` raises
      :class:`~repro.errors.GrammarUnavailable` (with ``retry_after``)
      until ``reset_seconds`` have passed.
    * ``half_open`` — exactly one probe request is admitted; its
      outcome decides: success closes the breaker, failure re-opens it
      with the reset time doubled (capped at ``max_reset_seconds``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        grammar: str = "?",
        failure_threshold: int = 5,
        reset_seconds: float = 5.0,
        max_reset_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ):
        self.grammar = grammar
        self.failure_threshold = max(1, failure_threshold)
        self.base_reset_seconds = reset_seconds
        self.reset_seconds = reset_seconds
        self.max_reset_seconds = max_reset_seconds
        self._clock = clock
        self._metrics = metrics
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_outstanding = False

    # -- transitions -------------------------------------------------------

    def _set_state(self, state: str) -> None:
        if state != self.state and self._metrics is not None:
            self._metrics.counter(f"serve.breaker.{state}").inc()
        self.state = state
        if self._metrics is not None:
            gauge = {self.CLOSED: 0, self.HALF_OPEN: 1, self.OPEN: 2}[state]
            self._metrics.gauge("serve.breaker_state").set(gauge)

    def _retry_after(self) -> float:
        assert self._opened_at is not None
        return max(0.0, self._opened_at + self.reset_seconds - self._clock())

    def admit(self) -> None:
        """Gate one request; raises when the grammar is unavailable."""
        if self.state == self.CLOSED:
            return
        if self.state == self.OPEN:
            if self._retry_after() > 0.0:
                raise GrammarUnavailable(
                    f"grammar {self.grammar!r} is unavailable "
                    f"(circuit breaker open after "
                    f"{self.consecutive_failures} consecutive "
                    f"infrastructure failures); retry in "
                    f"{self._retry_after():.3g}s",
                    grammar=self.grammar,
                    retry_after=self._retry_after(),
                )
            self._set_state(self.HALF_OPEN)
            self._probe_outstanding = False
        # HALF_OPEN: admit exactly one probe at a time.
        if self._probe_outstanding:
            raise GrammarUnavailable(
                f"grammar {self.grammar!r} is unavailable "
                "(circuit breaker half-open, probe in flight)",
                grammar=self.grammar,
                retry_after=self.reset_seconds,
            )
        self._probe_outstanding = True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self.reset_seconds = self.base_reset_seconds
            self._probe_outstanding = False
            self._set_state(self.CLOSED)

    def record_failure(self) -> None:
        """One *infrastructure* failure (crash/timeout, not bad input)."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # The probe failed: re-open, doubled reset time.
            self.reset_seconds = min(
                self.max_reset_seconds, self.reset_seconds * 2
            )
            self._probe_outstanding = False
            self._opened_at = self._clock()
            self._set_state(self.OPEN)
            return
        if (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self._set_state(self.OPEN)

    def release_probe(self) -> None:
        """Resolve an outstanding half-open probe *neutrally* — the
        probe request terminated without saying anything about grammar
        health (rejected at the queue, expired while queued) — so the
        breaker can admit the next probe instead of wedging."""
        self._probe_outstanding = False

    @property
    def available(self) -> bool:
        """True when :meth:`admit` would not raise right now."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            return self._retry_after() <= 0.0
        return not self._probe_outstanding
