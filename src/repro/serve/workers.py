"""Supervised subprocess workers: the lifecycle behind serve *and* batch.

A :class:`WorkerHandle` owns one worker subprocess plus everything the
supervisor needs to manage it:

* **fresh queues per incarnation** — a killed worker can die mid-``put``
  and poison its queues, so restart never reuses them;
* **heartbeat** — the worker updates a shared timestamp from a daemon
  thread every ``heartbeat_interval`` seconds; a frozen process (OOM
  thrash, stop signal, D-state) stops beating even when its ``Process``
  object still answers ``is_alive()``;
* **deadline-bounded calls** — :meth:`WorkerHandle.call` polls the
  response queue while watching the deadline and process liveness,
  raising typed :class:`~repro.errors.TranslationTimeout` /
  :class:`~repro.errors.WorkerCrashed` instead of blocking forever;
* **kill + restart** — :meth:`restart` tears the incarnation down
  (SIGKILL if needed) and spawns a clean one;
* **environment snapshot** — :meth:`start` captures the supervisor's
  ``REPRO_*`` variables and replays them inside the worker, so fault
  markers and knobs set *after* a shared forkserver came up still
  reach every fresh incarnation.

The worker side (:func:`worker_main`) hydrates its translator from the
shared-memory artifact plane named by its
:class:`~repro.batch.WorkerSpec` (zero-copy attach; see
:mod:`repro.buildcache.shm`), falling back to the build cache — exactly
the ``repro batch`` recipe, so a serve worker and a batch worker
produce byte-identical results by construction.  Inside the worker the
stages are **pipelined**: a scan-ahead thread lexes input N+1 while the
main thread parses/evaluates input N and flushes its response, with
per-input failure isolation preserved (a stage failure is reported on
that input's response tuple only).  Result tuples use the batch wire
shape ``(job_id, ok, root_attrs, n_passes, error_type, error,
seconds)``; :func:`repro.batch._item_from_tuple` and the serve daemon
both consume it.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from typing import Any, Optional, Tuple

from repro.errors import TranslationTimeout, WorkerCrashed

#: Shape of one answer on the response queue (the batch wire format).
ResultTuple = Tuple[Any, bool, Any, int, Optional[str], Optional[str], float]

#: How often the worker-side daemon thread refreshes the heartbeat.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: How long :meth:`WorkerHandle.call` sleeps between response polls.
_POLL_SECONDS = 0.02

#: How many inputs the worker's scan-ahead stage may lex beyond the one
#: currently being evaluated (bounds token-buffer memory).
SCAN_AHEAD = 2

#: Sentinel for :meth:`WorkerHandle._await_answer`: match any job.
_ANY = object()


def _heartbeat_loop(beat, interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        beat.value = time.monotonic()


def _apply_env_snapshot(env) -> None:
    """Replay the supervisor's ``REPRO_*`` environment inside the worker.

    Fork children inherit the parent's environment for free, but
    forkserver children inherit the *forkserver's* — frozen at the
    moment the server started — so knobs set later (fault markers,
    cache overrides) would silently not reach them.  The snapshot is
    authoritative: stale ``REPRO_*`` keys not in it are removed.
    """
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)


def worker_main(
    spec, request_q, response_q, beat, heartbeat_interval, env=None
) -> None:
    """Subprocess entry point: hydrate, then serve jobs until the
    ``None`` sentinel (graceful stop) or the process is killed.

    Hydration prefers the zero-copy shared-memory plane and falls back
    to the build cache (:func:`repro.batch.build_worker_translator`).
    Any failure — including a failure to *build* the translator — is
    reported through the response queue with per-job isolation; the
    loop itself only exits on the sentinel.

    Execution is pipelined: the scan stage runs on its own thread,
    lexing up to :data:`SCAN_AHEAD` inputs past the one the main
    thread is parsing/evaluating, so the first pass of input N+1 is
    ready the moment input N's response is flushed.
    """
    from repro.testing.faults import maybe_hang

    if env is not None:
        _apply_env_snapshot(env)
    stop = threading.Event()
    if beat is not None:
        beat.value = time.monotonic()
        threading.Thread(
            target=_heartbeat_loop,
            args=(beat, heartbeat_interval, stop),
            daemon=True,
        ).start()
    translator = None
    build_error: Optional[BaseException] = None
    try:
        from repro.batch import build_worker_translator

        translator = build_worker_translator(spec)
    except BaseException as exc:  # reported per-job below
        build_error = exc
    # Incremental memo: WorkerHandle already slotted the grammar's memo
    # root per worker id, so this process is the directory's only writer.
    memo_dir = getattr(spec, "memo_dir", None)

    #: (job_id, text, tokens, stage_error, started) — or None to stop.
    scanned: "queue.Queue" = queue.Queue(maxsize=SCAN_AHEAD)

    def scan_loop() -> None:
        while True:
            job = request_q.get()
            if job is None:
                scanned.put(None)
                return
            job_id, text = job
            started = time.perf_counter()
            tokens = None
            error: Optional[BaseException] = None
            try:
                maybe_hang(text)
                if translator is None:
                    raise build_error  # type: ignore[misc]
                if translator.scanner is not None:
                    tokens = list(translator.scanner.tokens(text))
            except BaseException as exc:  # per-job isolation
                error = exc
            scanned.put((job_id, text, tokens, error, started))

    threading.Thread(
        target=scan_loop, daemon=True, name="repro-worker-scan"
    ).start()

    while True:
        item = scanned.get()
        if item is None:
            stop.set()
            return
        job_id, text, tokens, error, started = item
        result = None
        if error is None:
            try:
                if tokens is not None:
                    result = translator.translate_tokens(
                        iter(tokens), memo_dir=memo_dir
                    )
                else:
                    # Scanner-less translator: translate() raises the
                    # canonical EvaluationError for this input.
                    result = translator.translate(text, memo_dir=memo_dir)
            except BaseException as exc:  # per-job isolation
                error = exc
        if error is not None:
            response_q.put(
                (
                    job_id,
                    False,
                    None,
                    0,
                    type(error).__name__,
                    str(error),
                    time.perf_counter() - started,
                )
            )
        else:
            response_q.put(
                (
                    job_id,
                    True,
                    result.root_attrs,
                    result.n_passes,
                    None,
                    None,
                    time.perf_counter() - started,
                )
            )


class WorkerHandle:
    """One supervised worker subprocess (see module docstring).

    Not thread-safe for concurrent use — each handle is driven by one
    supervisor (the daemon binds one dispatcher task per handle; batch
    binds one driver thread per handle).  One driver may keep several
    jobs in flight on its handle via :meth:`submit` +
    :meth:`next_answer` (the pipelined batch path).
    """

    def __init__(
        self,
        spec,
        worker_id: int = 0,
        metrics=None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        mp_context: Optional[str] = None,
    ):
        if getattr(spec, "memo_dir", None):
            # One MEMO1 writer per directory: each worker slot keeps
            # its own subdirectory under the grammar's memo root, and a
            # supervised *restart* of the slot re-warms from whatever
            # generation its predecessor sealed there.
            import dataclasses

            spec = dataclasses.replace(
                spec, memo_dir=os.path.join(spec.memo_dir, f"w{worker_id}")
            )
        self.spec = spec
        self.worker_id = worker_id
        self.metrics = metrics
        self.heartbeat_interval = heartbeat_interval
        if mp_context is None:
            mp_context = "fork" if os.name == "posix" else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self.process = None
        self.request_q = None
        self.response_q = None
        self._beat = None
        #: Number of times this handle has (re)started a process.
        self.incarnation = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerHandle":
        """Spawn a fresh incarnation (fresh queues, fresh heartbeat,
        fresh ``REPRO_*`` environment snapshot)."""
        if self.process is not None and self.process.is_alive():
            return self
        self.request_q = self._ctx.Queue()
        self.response_q = self._ctx.Queue()
        self._beat = self._ctx.Value("d", time.monotonic(), lock=False)
        env = {
            key: value
            for key, value in os.environ.items()
            if key.startswith("REPRO_")
        }
        self.process = self._ctx.Process(
            target=worker_main,
            args=(
                self.spec,
                self.request_q,
                self.response_q,
                self._beat,
                self.heartbeat_interval,
                env,
            ),
            daemon=True,
            name=f"repro-serve-worker-{self.worker_id}",
        )
        self.process.start()
        self.incarnation += 1
        if self.metrics is not None and self.incarnation > 1:
            self.metrics.counter("serve.worker_restarts").inc()
        return self

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return None if self.process is None else self.process.exitcode

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    def heartbeat_age(self) -> float:
        """Seconds since the worker last beat (``inf`` when stopped)."""
        if self._beat is None:
            return float("inf")
        return time.monotonic() - self._beat.value

    def stop(self, grace: float = 2.0) -> None:
        """Graceful stop: sentinel, short join, then escalate to kill."""
        if self.process is None:
            return
        try:
            if self.alive and self.request_q is not None:
                self.request_q.put_nowait(None)
        except (OSError, ValueError, queue.Full):
            pass
        self.process.join(grace)
        if self.process.is_alive():
            self.kill()
        else:
            self._discard_queues()

    def kill(self) -> None:
        """SIGKILL the incarnation and discard its (possibly poisoned)
        queues; the handle can be :meth:`start`-ed again afterwards."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.kill()
            self.process.join(5.0)
        self._discard_queues()

    def restart(self) -> "WorkerHandle":
        self.kill()
        return self.start()

    def _discard_queues(self) -> None:
        for q in (self.request_q, self.response_q):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        self.request_q = None
        self.response_q = None

    # -- request execution -------------------------------------------------

    def submit(self, job_id: Any, text: str) -> None:
        if self.request_q is None:
            raise WorkerCrashed(
                f"worker {self.worker_id} is not running",
                worker_id=self.worker_id,
            )
        self.request_q.put((job_id, text))

    def call(
        self,
        job_id: Any,
        text: str,
        timeout: Optional[float] = None,
        cancelled=None,
    ) -> ResultTuple:
        """Run one job to completion, supervising the process.

        Raises :class:`~repro.errors.TranslationTimeout` when
        ``timeout`` (seconds) elapses and
        :class:`~repro.errors.WorkerCrashed` when the process dies
        mid-job — in both cases the caller owns the kill/restart
        decision (the incarnation is left as-is so the supervisor can
        inspect ``exitcode``).  ``cancelled`` is an optional callable
        polled between waits; returning True aborts the wait with
        :class:`~repro.errors.WorkerCrashed` (used for pool shutdown).
        """
        self.submit(job_id, text)
        deadline = None if timeout is None else time.monotonic() + timeout
        return self._await_answer(job_id, deadline, timeout, cancelled)

    def next_answer(
        self,
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
        cancelled=None,
    ) -> ResultTuple:
        """Wait for *any* outstanding answer (the pipelined-batch path,
        where several :meth:`submit`-ed jobs ride one incarnation).

        ``deadline`` is an absolute ``time.monotonic()`` instant
        (``timeout`` only labels the raised
        :class:`~repro.errors.TranslationTimeout`); crash/cancel
        semantics match :meth:`call`.
        """
        return self._await_answer(_ANY, deadline, timeout, cancelled)

    def _await_answer(
        self,
        job_id: Any,
        deadline: Optional[float],
        timeout: Optional[float],
        cancelled,
    ) -> ResultTuple:
        while True:
            response_q = self.response_q
            if response_q is None:
                # kill()/stop() discarded the queues mid-wait (pool
                # shutdown from another thread): the job is lost, not
                # our caller's fault — same verdict as a dead worker.
                raise WorkerCrashed(
                    f"worker {self.worker_id} was shut down while "
                    "holding a request",
                    worker_id=self.worker_id,
                )
            try:
                answer = response_q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                pass
            except (OSError, ValueError):
                raise WorkerCrashed(
                    f"worker {self.worker_id} response queue was "
                    "discarded while holding a request",
                    worker_id=self.worker_id,
                ) from None
            else:
                if job_id is _ANY or answer[0] == job_id:
                    return answer
                continue  # stale answer from a pre-restart job: drop it
            if cancelled is not None and cancelled():
                raise WorkerCrashed(
                    f"worker {self.worker_id} call cancelled by shutdown",
                    worker_id=self.worker_id,
                )
            if not self.alive:
                # The worker may have answered and *then* died: drain
                # once more before declaring the job lost.
                try:
                    answer = response_q.get(timeout=_POLL_SECONDS)
                    if job_id is _ANY or answer[0] == job_id:
                        return answer
                except (queue.Empty, OSError, ValueError):
                    pass
                raise WorkerCrashed(
                    f"worker {self.worker_id} died with exit code "
                    f"{self.exitcode} while holding a request",
                    exitcode=self.exitcode,
                    worker_id=self.worker_id,
                )
            if deadline is not None and time.monotonic() >= deadline:
                label = "its deadline" if timeout is None else (
                    f"its {timeout:.3g}s deadline"
                )
                raise TranslationTimeout(
                    f"translation exceeded {label} "
                    f"on worker {self.worker_id}",
                    seconds=timeout,
                )
