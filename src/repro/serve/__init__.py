"""``repro serve``: the LINGUIST translator as a long-lived service.

The paper's economics (§V) split translator cost into an expensive
once-per-grammar build and a cheap per-input streaming translation; a
per-request *process* re-pays startup and cache rehydration every
time.  This package keeps the build warm in a daemon and streams
translation requests through a pool of **supervised** subprocess
workers:

* :mod:`repro.serve.workers` — the worker lifecycle shared with
  ``repro batch``: a :class:`WorkerHandle` owns one subprocess (fresh
  queues per incarnation, heartbeat, kill/restart) that rehydrates its
  translator from the build cache via a
  :class:`~repro.batch.WorkerSpec`.
* :mod:`repro.serve.admission` — the robustness primitives: bounded
  admission (typed :class:`~repro.errors.ServerOverloaded` with
  ``Retry-After``, never unbounded buffering), per-request
  :class:`Deadline`, exponential :class:`Backoff`, and a
  :class:`CircuitBreaker` that degrades a persistently-failing grammar
  to *unavailable* instead of poisoning the pool.
* :mod:`repro.serve.journal` — a durable CRC-framed NDJSON request
  journal (``SRVJ1``, the PROV1 discipline) so a killed daemon can
  report exactly which requests completed; ``repro fsck`` verifies and
  salvages it.
* :mod:`repro.serve.daemon` — the asyncio service: per-grammar bounded
  queues, dispatcher tasks, a supervisor that restarts dead workers
  with backoff and re-dispatches (bounded retries) or fails-fast the
  in-flight request, and graceful drain on SIGTERM.
* :mod:`repro.serve.http` — a dependency-free HTTP/1.1 front end
  (``POST /translate``, ``GET /healthz``, ``GET /stats``) whose
  translation bodies are byte-identical to ``repro run`` / ``repro
  batch`` output.

See ``docs/serving.md`` for lifecycle, backpressure, and journal
format.
"""

from repro.serve.admission import Backoff, CircuitBreaker, Deadline
from repro.serve.daemon import (
    GrammarService,
    Request,
    ServeConfig,
    ServeResult,
    TranslationServer,
)
from repro.serve.journal import (
    JOURNAL_FORMAT,
    JournalScanReport,
    JournalState,
    RequestJournal,
    looks_like_request_journal,
    replay_journal,
    salvage_journal,
    scan_journal,
)
from repro.serve.workers import WorkerHandle, worker_main

__all__ = [
    "Backoff",
    "CircuitBreaker",
    "Deadline",
    "GrammarService",
    "JOURNAL_FORMAT",
    "JournalScanReport",
    "JournalState",
    "Request",
    "RequestJournal",
    "ServeConfig",
    "ServeResult",
    "TranslationServer",
    "WorkerHandle",
    "looks_like_request_journal",
    "replay_journal",
    "salvage_journal",
    "scan_journal",
    "worker_main",
]
