"""The durable request journal: what did the daemon actually finish?

A long-lived service that can be killed at any instant owes its
operator an exact answer to "which requests completed?".  The serve
daemon streams one line per request-state transition into an
append-only NDJSON journal with the PROV1 framing discipline
(``repro.obs.provenance``): every line is canonical JSON carrying its
own CRC32, and a graceful drain appends a seal line covering the whole
stream.  Unlike a provenance log the journal must be *readable after a
crash* — a SIGKILLed daemon leaves an unsealed journal, possibly with
one torn final line, and that is an expected state: the checksum-valid
prefix is authoritative (a torn tail is reported, not fatal), and
anything the prefix says ``done`` was durably completed before the
crash.

Record kinds (field ``e``)::

    hdr   {"format":"SRVJ1","grammars":[...],"pid":...}
    req   {"i":seq,"id":R,"g":grammar,"sha":input-sha256}   admitted
    done  {"i":seq,"id":R,"g":grammar,"sha":output-sha256,
           "ms":...,"w":worker,"r":retries}                 completed
    fail  {"i":seq,"id":R,"g":grammar,"t":type,"msg":...}   failed
    seal  {"n":records,"crc":stream-crc}                    clean drain

``repro fsck`` sniffs the ``SRVJ1`` tag and routes here:
:func:`scan_journal` verifies, :func:`salvage_journal` recovers the
valid prefix into a freshly sealed journal, and :func:`replay_journal`
reduces the record stream to a :class:`JournalState` (completed /
failed / in-flight requests) — the crash-recovery report.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import JournalCorruptionError

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_NAME",
    "JournalScanReport",
    "JournalState",
    "RequestJournal",
    "looks_like_request_journal",
    "replay_journal",
    "salvage_journal",
    "scan_journal",
]

#: Format tag in the header line; bump on incompatible layout changes.
JOURNAL_FORMAT = "SRVJ1"

#: Default file name inside a ``--journal`` directory.
JOURNAL_NAME = "requests.ndjson"

_SEPARATORS = (",", ":")


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _frame(obj: Dict[str, Any]) -> str:
    """One journal line: canonical JSON + its own CRC32 (PROV1 framing)."""
    body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
    crc = zlib.crc32(body.encode("utf-8"))
    return f'{body[:-1]},"c":{crc}}}\n'


def _verify_line(line: str, index: int, path: str) -> Dict[str, Any]:
    """Parse + CRC-check one line; raise naming the damaged record."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise JournalCorruptionError(
            f"journal record {index} is not valid JSON ({exc})",
            record_index=index,
            path=path,
            reason="framing",
        ) from exc
    if not isinstance(obj, dict) or "c" not in obj:
        raise JournalCorruptionError(
            f"journal record {index} has no checksum field",
            record_index=index,
            path=path,
            reason="framing",
        )
    want = obj.pop("c")
    body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
    if zlib.crc32(body.encode("utf-8")) != want:
        raise JournalCorruptionError(
            f"journal record {index} checksum mismatch "
            "(bit rot or torn write)",
            record_index=index,
            path=path,
            reason="checksum",
        )
    return obj


def journal_path(directory_or_file: str) -> str:
    """``--journal`` accepts a directory (the journal lands at
    ``requests.ndjson`` inside it) or an explicit ``*.ndjson`` file
    path.  A path that does not exist yet counts as a directory unless
    it is named like an NDJSON file — the daemon creates it."""
    if os.path.isfile(directory_or_file) or directory_or_file.endswith(
        ".ndjson"
    ):
        return directory_or_file
    return os.path.join(directory_or_file, JOURNAL_NAME)


def rotate_existing(path: str) -> Optional[str]:
    """Move an existing journal aside (``requests.1.ndjson``, ...) so a
    fresh daemon run never appends into an older run's stream; returns
    the rotated-to path (or None)."""
    if not os.path.exists(path):
        return None
    stem, ext = os.path.splitext(path)
    n = 1
    while os.path.exists(f"{stem}.{n}{ext}"):
        n += 1
    rotated = f"{stem}.{n}{ext}"
    os.replace(path, rotated)
    return rotated


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


class RequestJournal:
    """Append-only journal writer for one daemon run.

    Every line is flushed to the OS as it is written, so a SIGKILLed
    *process* loses at most the line being torn mid-write; pass
    ``fsync_every_done=True`` to additionally ``fsync`` after every
    ``done``/``fail`` record (machine-crash durability, at a per-request
    I/O cost).  :meth:`seal` fsyncs unconditionally.
    """

    def __init__(
        self,
        directory_or_file: str,
        grammars: Optional[List[str]] = None,
        metrics=None,
        fsync_every_done: bool = False,
    ):
        path = journal_path(directory_or_file)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.rotated_from = rotate_existing(path)
        self.path = path
        self._fsync_every_done = fsync_every_done
        self._seq = 0
        self._stream_crc = 0
        self._sealed = False
        self._metrics = metrics
        self._f = open(path, "w", encoding="utf-8")
        self._emit(
            {
                "e": "hdr",
                "format": JOURNAL_FORMAT,
                "grammars": sorted(grammars or []),
                "pid": os.getpid(),
            },
            count=False,
        )

    # -- events ------------------------------------------------------------

    def admitted(self, request_id: Any, grammar: str, text: str) -> None:
        self._emit(
            {
                "e": "req",
                "i": self._seq,
                "id": request_id,
                "g": grammar,
                "sha": sha256_text(text),
            }
        )

    def completed(
        self,
        request_id: Any,
        grammar: str,
        output: str,
        seconds: float,
        worker_id: Optional[int] = None,
        retries: int = 0,
    ) -> None:
        self._emit(
            {
                "e": "done",
                "i": self._seq,
                "id": request_id,
                "g": grammar,
                "sha": sha256_text(output),
                "ms": round(seconds * 1000.0, 3),
                "w": worker_id,
                "r": retries,
            },
            durable=self._fsync_every_done,
        )

    def failed(
        self,
        request_id: Any,
        grammar: str,
        error_type: str,
        message: str,
        seconds: float = 0.0,
    ) -> None:
        self._emit(
            {
                "e": "fail",
                "i": self._seq,
                "id": request_id,
                "g": grammar,
                "t": error_type,
                "msg": message[:500],
                "ms": round(seconds * 1000.0, 3),
            },
            durable=self._fsync_every_done,
        )

    def seal(self) -> None:
        """Seal the stream (graceful drain); idempotent."""
        if self._sealed or self._f is None:
            return
        line = _frame({"e": "seal", "n": self._seq, "crc": self._stream_crc})
        self._f.write(line)
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        self._f = None
        self._sealed = True

    def close(self) -> None:
        """Close *without* sealing (crash-path cleanup in tests)."""
        if self._f is not None:
            self._f.close()
            self._f = None

    @property
    def sealed(self) -> bool:
        return self._sealed

    def _emit(
        self, obj: Dict[str, Any], count: bool = True, durable: bool = False
    ) -> None:
        if self._f is None:
            raise JournalCorruptionError(
                "journal is closed", path=self.path, reason="closed"
            )
        line = _frame(obj)
        self._f.write(line)
        self._f.flush()
        if durable:
            os.fsync(self._f.fileno())
        self._stream_crc = zlib.crc32(line.encode("utf-8"), self._stream_crc)
        if count:
            self._seq += 1
        if self._metrics is not None:
            self._metrics.counter("serve.journal.records").inc()
            self._metrics.counter("serve.journal.bytes").inc(len(line))


# ---------------------------------------------------------------------------
# reading: scan / replay / salvage
# ---------------------------------------------------------------------------


def looks_like_request_journal(path: str) -> bool:
    """Cheap sniff used by ``repro fsck`` to route files: a request
    journal is NDJSON whose first line carries the SRVJ1 format tag."""
    try:
        with open(path, "rb") as f:
            head = f.read(4096)
    except OSError:
        return False
    first = head.split(b"\n", 1)[0]
    return first.startswith(b"{") and (
        b'"' + JOURNAL_FORMAT.encode() + b'"' in first
    )


@dataclass
class JournalScanReport:
    """Outcome of verifying a journal file."""

    path: str
    ok: bool = True
    sealed: bool = False
    torn_tail: bool = False
    n_valid: int = 0
    error: Optional[JournalCorruptionError] = None

    def render(self) -> str:
        state = (
            "sealed"
            if self.sealed
            else "UNSEALED (daemon did not drain cleanly)"
        )
        lines = [
            f"request journal: {self.path}",
            f"  format: {JOURNAL_FORMAT}, {state}",
            f"  valid records: {self.n_valid}"
            + (" + torn tail line (expected after a kill)"
               if self.torn_tail else ""),
        ]
        if self.ok:
            lines.append("  integrity: OK")
        else:
            assert self.error is not None
            lines.append(
                f"  integrity: CORRUPT at {self.error.locus()} "
                f"[{self.error.reason}]"
            )
        return "\n".join(lines)


def _read_lines(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # a final line without its newline is a torn write;
    return lines     # the scanners judge it by its (failing) checksum


def scan_journal(path: str, metrics=None) -> JournalScanReport:
    """Verify every line of a journal; see module docstring for what
    counts as corruption vs an expected crash artifact."""
    path = journal_path(path)
    report = JournalScanReport(path=path)
    try:
        lines = _read_lines(path)
    except OSError as exc:
        report.ok = False
        report.error = JournalCorruptionError(
            f"cannot read journal: {exc}", path=path, reason="io"
        )
        return report
    stream_crc = 0
    n_counted = 0
    for index, line in enumerate(lines):
        try:
            obj = _verify_line(line, index, path)
        except JournalCorruptionError as exc:
            if index == len(lines) - 1 and not report.sealed:
                # Torn final line of an unsealed journal: expected
                # after SIGKILL; the valid prefix stays authoritative.
                report.torn_tail = True
                break
            report.ok = False
            report.error = exc
            break
        if obj.get("e") == "seal":
            if obj.get("n") != n_counted or obj.get("crc") != stream_crc:
                report.ok = False
                report.error = JournalCorruptionError(
                    f"journal seal mismatch: seal covers {obj.get('n')} "
                    f"record(s) crc {obj.get('crc')}, stream has "
                    f"{n_counted} crc {stream_crc}",
                    record_index=index,
                    path=path,
                    reason="seal",
                )
                break
            report.sealed = True
            continue
        stream_crc = zlib.crc32((line + "\n").encode("utf-8"), stream_crc)
        if obj.get("e") != "hdr":
            n_counted += 1
        report.n_valid += 1
    if report.n_valid == 0 and report.ok:
        report.ok = False
        report.error = JournalCorruptionError(
            "journal has no valid header line",
            record_index=0,
            path=path,
            reason="header",
        )
    if metrics is not None:
        metrics.counter("serve.journal.scans").inc()
        if not report.ok:
            metrics.counter("serve.journal.corrupt").inc()
    return report


def salvage_journal(path: str, out_path: str, metrics=None) -> JournalScanReport:
    """Recover the checksum-valid prefix of ``path`` into a freshly
    sealed journal at ``out_path`` (always sealed, always clean)."""
    path = journal_path(path)
    report = scan_journal(path, metrics=metrics)
    lines = _read_lines(path)
    stream_crc = 0
    n_counted = 0
    kept: List[str] = []
    for index, line in enumerate(lines[: report.n_valid]):
        obj = _verify_line(line, index, path)
        if obj.get("e") == "seal":
            continue
        kept.append(line + "\n")
        stream_crc = zlib.crc32((line + "\n").encode("utf-8"), stream_crc)
        if obj.get("e") != "hdr":
            n_counted += 1
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.writelines(kept)
        f.write(_frame({"e": "seal", "n": n_counted, "crc": stream_crc}))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, out_path)
    if metrics is not None:
        metrics.counter("serve.journal.salvaged").inc()
    return report


@dataclass
class JournalState:
    """The reduction of a journal stream: exactly which requests the
    daemon admitted, completed, and failed — the crash report."""

    path: str
    sealed: bool = False
    torn_tail: bool = False
    #: request id -> output sha256 (one entry per *completed* request).
    completed: Dict[Any, str] = field(default_factory=dict)
    #: request id -> (error_type, message).
    failed: Dict[Any, Tuple[str, str]] = field(default_factory=dict)
    #: admitted but neither completed nor failed (in flight at the kill).
    in_flight: List[Any] = field(default_factory=list)
    #: request ids with more than one done record (must stay empty:
    #: completed requests are never duplicated).
    duplicates: List[Any] = field(default_factory=list)
    n_records: int = 0

    @property
    def n_admitted(self) -> int:
        return len(self.completed) + len(self.failed) + len(self.in_flight)


def replay_journal(path: str) -> JournalState:
    """Reduce a (possibly unsealed, possibly torn-tailed) journal to its
    :class:`JournalState`; raises :class:`JournalCorruptionError` on
    damage *inside* the stream (not an expected crash artifact)."""
    path = journal_path(path)
    report = scan_journal(path)
    if not report.ok:
        raise report.error
    state = JournalState(
        path=path, sealed=report.sealed, torn_tail=report.torn_tail
    )
    admitted: Dict[Any, bool] = {}
    lines = _read_lines(path)[: report.n_valid]
    for index, line in enumerate(lines):
        obj = _verify_line(line, index, path)
        kind = obj.get("e")
        if kind in ("hdr", "seal"):
            continue
        state.n_records += 1
        rid = obj.get("id")
        if kind == "req":
            admitted[rid] = True
        elif kind == "done":
            if rid in state.completed:
                state.duplicates.append(rid)
            state.completed[rid] = obj.get("sha", "")
        elif kind == "fail":
            state.failed[rid] = (obj.get("t", "?"), obj.get("msg", ""))
    state.in_flight = [
        rid
        for rid in admitted
        if rid not in state.completed and rid not in state.failed
    ]
    return state
