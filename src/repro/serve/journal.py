"""The durable request journal: what did the daemon actually finish?

A long-lived service that can be killed at any instant owes its
operator an exact answer to "which requests completed?".  The serve
daemon streams one line per request-state transition into an
append-only NDJSON journal with the PROV1 framing discipline
(``repro.obs.provenance``): every line is canonical JSON carrying its
own CRC32, and a graceful drain appends a seal line covering the whole
stream.  Unlike a provenance log the journal must be *readable after a
crash* — a SIGKILLed daemon leaves an unsealed journal, possibly with
one torn final line, and that is an expected state: the checksum-valid
prefix is authoritative (a torn tail is reported, not fatal), and
anything the prefix says ``done`` was durably completed before the
crash.

Record kinds (field ``e``)::

    hdr   {"format":"SRVJ1","grammars":[...],"pid":...}
    req   {"i":seq,"id":R,"g":grammar,"sha":input-sha256}   admitted
    done  {"i":seq,"id":R,"g":grammar,"sha":output-sha256,
           "ms":...,"w":worker,"r":retries}                 completed
    fail  {"i":seq,"id":R,"g":grammar,"t":type,"msg":...}   failed
    gap   {"lost":L,"base":seq}                             suspension ended
    seal  {"n":records,"crc":stream-crc}                    clean drain

Disk pressure gets an *explicit* story instead of a corrupt stream:
when a write fails (ENOSPC) or governance trips the low-disk
watermark, the journal **suspends** — records are dropped and counted,
never half-written — and on :meth:`RequestJournal.resume` it writes a
newline terminator (sealing off whatever fragment the failed write
left) followed by a ``gap`` record naming how many records were lost
and the sequence number the stream resumes from.  The stream CRC
restarts at the gap line, so the scanners treat at most one
unverifiable line immediately before a valid ``gap`` record as
*explicit truncation*, not corruption.

``repro fsck`` sniffs the ``SRVJ1`` tag and routes here:
:func:`scan_journal` verifies, :func:`salvage_journal` recovers the
valid prefix into a freshly sealed journal, and :func:`replay_journal`
reduces the record stream to a :class:`JournalState` (completed /
failed / in-flight requests) — the crash-recovery report.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import JournalCorruptionError
from repro.util import atomic_write as _aw
from repro.util.atomic_write import atomic_write

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_NAME",
    "JournalScanReport",
    "JournalState",
    "RequestJournal",
    "looks_like_request_journal",
    "replay_journal",
    "salvage_journal",
    "scan_journal",
]

#: Format tag in the header line; bump on incompatible layout changes.
JOURNAL_FORMAT = "SRVJ1"

#: Default file name inside a ``--journal`` directory.
JOURNAL_NAME = "requests.ndjson"

_SEPARATORS = (",", ":")


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _frame(obj: Dict[str, Any]) -> str:
    """One journal line: canonical JSON + its own CRC32 (PROV1 framing)."""
    body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
    crc = zlib.crc32(body.encode("utf-8"))
    return f'{body[:-1]},"c":{crc}}}\n'


def _verify_line(line: str, index: int, path: str) -> Dict[str, Any]:
    """Parse + CRC-check one line; raise naming the damaged record."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise JournalCorruptionError(
            f"journal record {index} is not valid JSON ({exc})",
            record_index=index,
            path=path,
            reason="framing",
        ) from exc
    if not isinstance(obj, dict) or "c" not in obj:
        raise JournalCorruptionError(
            f"journal record {index} has no checksum field",
            record_index=index,
            path=path,
            reason="framing",
        )
    want = obj.pop("c")
    body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
    if zlib.crc32(body.encode("utf-8")) != want:
        raise JournalCorruptionError(
            f"journal record {index} checksum mismatch "
            "(bit rot or torn write)",
            record_index=index,
            path=path,
            reason="checksum",
        )
    return obj


def journal_path(directory_or_file: str) -> str:
    """``--journal`` accepts a directory (the journal lands at
    ``requests.ndjson`` inside it) or an explicit ``*.ndjson`` file
    path.  A path that does not exist yet counts as a directory unless
    it is named like an NDJSON file — the daemon creates it."""
    if os.path.isfile(directory_or_file) or directory_or_file.endswith(
        ".ndjson"
    ):
        return directory_or_file
    return os.path.join(directory_or_file, JOURNAL_NAME)


def rotate_existing(path: str) -> Optional[str]:
    """Move an existing journal aside (``requests.1.ndjson``, ...) so a
    fresh daemon run never appends into an older run's stream; returns
    the rotated-to path (or None)."""
    if not os.path.exists(path):
        return None
    stem, ext = os.path.splitext(path)
    n = 1
    while os.path.exists(f"{stem}.{n}{ext}"):
        n += 1
    rotated = f"{stem}.{n}{ext}"
    os.replace(path, rotated)
    return rotated


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


class RequestJournal:
    """Append-only journal writer for one daemon run.

    Every line is flushed to the OS as it is written, so a SIGKILLed
    *process* loses at most the line being torn mid-write; pass
    ``fsync_every_done=True`` to additionally ``fsync`` after every
    ``done``/``fail`` record (machine-crash durability, at a per-request
    I/O cost).  :meth:`seal` fsyncs unconditionally.
    """

    def __init__(
        self,
        directory_or_file: str,
        grammars: Optional[List[str]] = None,
        metrics=None,
        fsync_every_done: bool = False,
    ):
        path = journal_path(directory_or_file)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.rotated_from = rotate_existing(path)
        self.path = path
        self._fsync_every_done = fsync_every_done
        self._seq = 0
        self._stream_crc = 0
        self._sealed = False
        self._suspended = False
        self._lost = 0
        self._metrics = metrics
        self._f = _aw.open_file(path, "w", encoding="utf-8")
        self._emit(
            {
                "e": "hdr",
                "format": JOURNAL_FORMAT,
                "grammars": sorted(grammars or []),
                "pid": os.getpid(),
            },
            count=False,
        )

    # -- events ------------------------------------------------------------

    def admitted(self, request_id: Any, grammar: str, text: str) -> None:
        self._emit(
            {
                "e": "req",
                "i": self._seq,
                "id": request_id,
                "g": grammar,
                "sha": sha256_text(text),
            }
        )

    def completed(
        self,
        request_id: Any,
        grammar: str,
        output: str,
        seconds: float,
        worker_id: Optional[int] = None,
        retries: int = 0,
    ) -> None:
        self._emit(
            {
                "e": "done",
                "i": self._seq,
                "id": request_id,
                "g": grammar,
                "sha": sha256_text(output),
                "ms": round(seconds * 1000.0, 3),
                "w": worker_id,
                "r": retries,
            },
            durable=self._fsync_every_done,
        )

    def failed(
        self,
        request_id: Any,
        grammar: str,
        error_type: str,
        message: str,
        seconds: float = 0.0,
    ) -> None:
        self._emit(
            {
                "e": "fail",
                "i": self._seq,
                "id": request_id,
                "g": grammar,
                "t": error_type,
                "msg": message[:500],
                "ms": round(seconds * 1000.0, 3),
            },
            durable=self._fsync_every_done,
        )

    def seal(self) -> None:
        """Seal the stream (graceful drain); idempotent.

        A suspended journal first tries to resume (write the gap
        marker); if the disk still refuses, the journal stays unsealed
        — an honest, classifiable crash artifact — rather than raising
        out of the drain path.
        """
        if self._sealed or self._f is None:
            return
        if self._suspended and not self.resume():
            self.close()
            return
        line = _frame({"e": "seal", "n": self._seq, "crc": self._stream_crc})
        try:
            self._f.write(line)
            _aw.fsync_file(self._f)
            self._f.close()
        except OSError:
            self.close()
            return
        self._f = None
        self._sealed = True

    def close(self) -> None:
        """Close *without* sealing (crash-path cleanup in tests)."""
        if self._f is not None:
            try:
                self._f.close()
            except OSError:
                pass
            self._f = None

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- disk-pressure lifecycle -------------------------------------------

    @property
    def suspended(self) -> bool:
        return self._suspended

    @property
    def lost_records(self) -> int:
        """Records dropped while suspended (reset by :meth:`resume`)."""
        return self._lost

    def suspend(self) -> None:
        """Stop writing (low-disk watermark); records are dropped and
        counted until :meth:`resume` writes the gap marker."""
        if not self._suspended:
            self._suspended = True
            if self._metrics is not None:
                self._metrics.counter("serve.journal.suspensions").inc()

    def resume(self) -> bool:
        """End a suspension with an explicit ``gap`` record.

        Writes a newline (terminating whatever fragment the failing
        write may have left) followed by the gap record; the stream CRC
        restarts at the gap line, mirroring the scanner.  Returns False
        — still suspended — if the disk still refuses the write.
        """
        if not self._suspended:
            return True
        if self._f is None:
            return False
        line = _frame({"e": "gap", "lost": self._lost, "base": self._seq})
        try:
            self._f.write("\n" + line)
            _aw.fsync_file(self._f)
        except OSError:
            return False
        self._stream_crc = zlib.crc32(line.encode("utf-8"))
        self._suspended = False
        self._lost = 0
        if self._metrics is not None:
            self._metrics.counter("serve.journal.gaps").inc()
        return True

    def _emit(
        self, obj: Dict[str, Any], count: bool = True, durable: bool = False
    ) -> None:
        if self._f is None:
            raise JournalCorruptionError(
                "journal is closed", path=self.path, reason="closed"
            )
        if self._suspended:
            self._lost += 1
            if self._metrics is not None:
                self._metrics.counter("serve.journal.lost_records").inc()
            return
        line = _frame(obj)
        try:
            self._f.write(line)
            self._f.flush()
            if durable:
                _aw.fsync_file(self._f)
        except OSError:
            # ENOSPC (or injected chaos) mid-line: the fragment on disk
            # is sealed off by the next resume()'s newline + gap
            # record.  Journaling degrades to counting, the daemon
            # keeps serving.
            self._lost += 1
            self.suspend()
            if self._metrics is not None:
                self._metrics.counter("serve.journal.lost_records").inc()
            return
        self._stream_crc = zlib.crc32(line.encode("utf-8"), self._stream_crc)
        if count:
            self._seq += 1
        if self._metrics is not None:
            self._metrics.counter("serve.journal.records").inc()
            self._metrics.counter("serve.journal.bytes").inc(len(line))


# ---------------------------------------------------------------------------
# reading: scan / replay / salvage
# ---------------------------------------------------------------------------


def looks_like_request_journal(path: str) -> bool:
    """Cheap sniff used by ``repro fsck`` to route files: a request
    journal is NDJSON whose first line carries the SRVJ1 format tag."""
    try:
        with open(path, "rb") as f:
            head = f.read(4096)
    except OSError:
        return False
    first = head.split(b"\n", 1)[0]
    return first.startswith(b"{") and (
        b'"' + JOURNAL_FORMAT.encode() + b'"' in first
    )


@dataclass
class JournalScanReport:
    """Outcome of verifying a journal file."""

    path: str
    ok: bool = True
    sealed: bool = False
    torn_tail: bool = False
    n_valid: int = 0
    #: Explicit suspension markers in the stream (disk-full episodes).
    gaps: int = 0
    #: Records the writer declared dropped across all gap markers.
    lost_records: int = 0
    error: Optional[JournalCorruptionError] = None

    def render(self) -> str:
        state = (
            "sealed"
            if self.sealed
            else "UNSEALED (daemon did not drain cleanly)"
        )
        lines = [
            f"request journal: {self.path}",
            f"  format: {JOURNAL_FORMAT}, {state}",
            f"  valid records: {self.n_valid}"
            + (" + torn tail line (expected after a kill)"
               if self.torn_tail else ""),
        ]
        if self.gaps:
            lines.append(
                f"  gaps: {self.gaps} suspension(s), "
                f"{self.lost_records} record(s) explicitly dropped "
                "(disk pressure)"
            )
        if self.ok:
            lines.append("  integrity: OK")
        else:
            assert self.error is not None
            lines.append(
                f"  integrity: CORRUPT at {self.error.locus()} "
                f"[{self.error.reason}]"
            )
        return "\n".join(lines)


def _read_lines(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # a final line without its newline is a torn write;
    return lines     # the scanners judge it by its (failing) checksum


def _peek_gap(lines: List[str], index: int, path: str) -> bool:
    """True when ``lines[index]`` is a checksum-valid gap record."""
    if index >= len(lines):
        return False
    try:
        obj = _verify_line(lines[index], index, path)
    except JournalCorruptionError:
        return False
    return obj.get("e") == "gap"


def _scan(path: str) -> Tuple[JournalScanReport, List[Dict[str, Any]]]:
    """The one verifying walk behind scan/salvage/replay.

    Returns the report plus every accepted record (hdr/req/done/fail/
    gap/seal) in stream order.  Gap tolerance: at most one
    unverifiable line is skipped when the *next* line is a valid gap
    record — that fragment is the write the journal declared lost
    before suspending, explicitly truncated by the resume newline.
    """
    report = JournalScanReport(path=path)
    accepted: List[Dict[str, Any]] = []
    try:
        lines = _read_lines(path)
    except OSError as exc:
        report.ok = False
        report.error = JournalCorruptionError(
            f"cannot read journal: {exc}", path=path, reason="io"
        )
        return report, accepted
    stream_crc = 0
    n_counted = 0
    index = 0
    while index < len(lines):
        line = lines[index]
        try:
            obj = _verify_line(line, index, path)
        except JournalCorruptionError as exc:
            if _peek_gap(lines, index + 1, path):
                # The torn fragment a failed write left behind; the
                # following gap record owns this damage.
                index += 1
                continue
            if index == len(lines) - 1 and not report.sealed:
                # Torn final line of an unsealed journal: expected
                # after SIGKILL; the valid prefix stays authoritative.
                report.torn_tail = True
                break
            report.ok = False
            report.error = exc
            break
        if obj.get("e") == "gap":
            # Suspension marker: the stream CRC restarts here and the
            # record count rewinds to what the writer durably counted
            # (a complete line whose flush failed was declared lost).
            report.gaps += 1
            report.lost_records += int(obj.get("lost", 0))
            stream_crc = zlib.crc32((line + "\n").encode("utf-8"))
            n_counted = int(obj.get("base", n_counted))
            report.n_valid += 1
            accepted.append(obj)
            index += 1
            continue
        if obj.get("e") == "seal":
            if obj.get("n") != n_counted or obj.get("crc") != stream_crc:
                report.ok = False
                report.error = JournalCorruptionError(
                    f"journal seal mismatch: seal covers {obj.get('n')} "
                    f"record(s) crc {obj.get('crc')}, stream has "
                    f"{n_counted} crc {stream_crc}",
                    record_index=index,
                    path=path,
                    reason="seal",
                )
                break
            report.sealed = True
            accepted.append(obj)
            index += 1
            continue
        stream_crc = zlib.crc32((line + "\n").encode("utf-8"), stream_crc)
        if obj.get("e") != "hdr":
            n_counted += 1
        report.n_valid += 1
        accepted.append(obj)
        index += 1
    if report.n_valid == 0 and report.ok:
        report.ok = False
        report.error = JournalCorruptionError(
            "journal has no valid header line",
            record_index=0,
            path=path,
            reason="header",
        )
    return report, accepted


def scan_journal(path: str, metrics=None) -> JournalScanReport:
    """Verify every line of a journal; see module docstring for what
    counts as corruption vs an expected crash artifact."""
    path = journal_path(path)
    report, _ = _scan(path)
    if metrics is not None:
        metrics.counter("serve.journal.scans").inc()
        if not report.ok:
            metrics.counter("serve.journal.corrupt").inc()
    return report


def salvage_journal(path: str, out_path: str, metrics=None) -> JournalScanReport:
    """Recover the checksum-valid prefix of ``path`` into a freshly
    sealed journal at ``out_path`` (always sealed, always clean; gap
    markers are dropped — the records they stood in for were never on
    disk)."""
    path = journal_path(path)
    report, accepted = _scan(path)
    if metrics is not None:
        metrics.counter("serve.journal.scans").inc()
        if not report.ok:
            metrics.counter("serve.journal.corrupt").inc()
    stream_crc = 0
    n_counted = 0
    kept: List[str] = []
    for obj in accepted:
        if obj.get("e") in ("seal", "gap"):
            continue
        line = _frame(obj)
        kept.append(line)
        stream_crc = zlib.crc32(line.encode("utf-8"), stream_crc)
        if obj.get("e") != "hdr":
            n_counted += 1
    with atomic_write(out_path, text=True, encoding="utf-8") as f:
        f.writelines(kept)
        f.write(_frame({"e": "seal", "n": n_counted, "crc": stream_crc}))
    if metrics is not None:
        metrics.counter("serve.journal.salvaged").inc()
    return report


@dataclass
class JournalState:
    """The reduction of a journal stream: exactly which requests the
    daemon admitted, completed, and failed — the crash report."""

    path: str
    sealed: bool = False
    torn_tail: bool = False
    #: request id -> output sha256 (one entry per *completed* request).
    completed: Dict[Any, str] = field(default_factory=dict)
    #: request id -> (error_type, message).
    failed: Dict[Any, Tuple[str, str]] = field(default_factory=dict)
    #: admitted but neither completed nor failed (in flight at the kill).
    in_flight: List[Any] = field(default_factory=list)
    #: request ids with more than one done record (must stay empty:
    #: completed requests are never duplicated).
    duplicates: List[Any] = field(default_factory=list)
    n_records: int = 0
    #: Disk-pressure suspensions and the records they dropped.
    gaps: int = 0
    lost_records: int = 0

    @property
    def n_admitted(self) -> int:
        return len(self.completed) + len(self.failed) + len(self.in_flight)


def replay_journal(path: str) -> JournalState:
    """Reduce a (possibly unsealed, possibly torn-tailed) journal to its
    :class:`JournalState`; raises :class:`JournalCorruptionError` on
    damage *inside* the stream (not an expected crash artifact)."""
    path = journal_path(path)
    report, accepted = _scan(path)
    if not report.ok:
        raise report.error
    state = JournalState(
        path=path,
        sealed=report.sealed,
        torn_tail=report.torn_tail,
        gaps=report.gaps,
        lost_records=report.lost_records,
    )
    admitted: Dict[Any, bool] = {}
    for obj in accepted:
        kind = obj.get("e")
        if kind in ("hdr", "seal", "gap"):
            continue
        state.n_records += 1
        rid = obj.get("id")
        if kind == "req":
            admitted[rid] = True
        elif kind == "done":
            if rid in state.completed:
                state.duplicates.append(rid)
            state.completed[rid] = obj.get("sha", "")
        elif kind == "fail":
            state.failed[rid] = (obj.get("t", "?"), obj.get("msg", ""))
    state.in_flight = [
        rid
        for rid in admitted
        if rid not in state.completed and rid not in state.failed
    ]
    return state
