#!/usr/bin/env python
"""An assembler with forward label references — three alternating passes.

This example builds an attribute grammar with the *programmatic* API
(:class:`repro.ag.GrammarBuilder`) instead of an ``.ag`` file, and shows
why the alternating-pass paradigm exists: resolving forward references
is inherently multi-pass.

    start:  add 1
            jmp end      ; forward reference!
            add 2
            jmp start    ; backward reference
    end:    halt

* pass 1 (right-to-left): instruction count, bottom-up;
* pass 2 (left-to-right): addresses thread left to right, and the
  label table (a partial function label -> address) accumulates;
* pass 3 (right-to-left): the complete label table flows back *down*
  the tree and every jump resolves.
"""

from repro.ag import GrammarBuilder
from repro.evalgen.runtime import FunctionLibrary
from repro.passes.report import render_pass_report

# The core pipeline pieces, used directly (no .ag file this time).
from repro.apt.build import APTBuilder
from repro.apt.storage import MemorySpool
from repro.evalgen.codegen_py import GeneratedEvaluator
from repro.evalgen.deadness import analyze_deadness
from repro.evalgen.driver import AlternatingPassDriver
from repro.evalgen.plan import build_pass_plans
from repro.evalgen.subsumption import SubsumptionConfig, choose_static_attributes
from repro.lalr.parser import LALRParser
from repro.lalr.tables import build_tables
from repro.passes.partition import assign_passes
from repro.passes.schedule import Direction
from repro.regex.generator import ScannerSpec


def build_grammar():
    b = GrammarBuilder("assembler", start="program")
    b.nonterminal("program", synthesized={"CODE": "list", "N": "int"})
    b.nonterminal(
        "line$list",
        inherited={"ADDR": "int", "ENV": "pf"},
        synthesized={"NEXT": "int", "LBLS": "pf", "CODE": "list", "N": "int"},
    )
    b.nonterminal(
        "line",
        inherited={"ADDR": "int", "ENV": "pf"},
        synthesized={"LBLS": "pf", "CODE": "list"},
    )
    b.nonterminal(
        "instr", inherited={"ENV": "pf"}, synthesized={"CODE": "list"}
    )
    b.terminal("LABEL", intrinsic={"TEXT": "string"})
    b.terminal("ADD")
    b.terminal("JMP")
    b.terminal("HALT")
    b.terminal("NUM", intrinsic={"LEXVAL": "int"})
    b.terminal("ID", intrinsic={"TEXT": "string"})

    b.production("program", ["line$list"], functions=[
        ("line$list.ADDR", "0"),
        # The whole point: ENV is the list's own synthesized label table.
        ("line$list.ENV", "line$list.LBLS"),
        ("program.CODE", "line$list.CODE"),
        ("program.N", "line$list.N"),
    ])
    b.production("line$list", ["line$list", "line"], functions=[
        ("line$list1.ADDR", "line$list0.ADDR"),
        ("line.ADDR", "line$list1.NEXT"),
        ("line$list0.NEXT", "line$list1.NEXT + 1"),
        ("line$list0.LBLS", "JoinPF(line$list1.LBLS, line.LBLS)"),
        ("line$list0.CODE", "append(line$list1.CODE, line.CODE)"),
        ("line$list0.N", "line$list1.N + 1"),
        # line.ENV and line$list1.ENV arrive as implicit copy-rules.
    ])
    b.production("line$list", ["line"], functions=[
        ("line.ADDR", "line$list.ADDR"),
        ("line$list.NEXT", "line$list.ADDR + 1"),
        ("line$list.LBLS", "line.LBLS"),
        ("line$list.CODE", "line.CODE"),
        ("line$list.N", "1"),
    ])
    b.production("line", ["LABEL", "instr"], functions=[
        ("line.LBLS", "consPF(LABEL.TEXT, line.ADDR, empty$pf())"),
        ("line.CODE", "instr.CODE"),
        # instr.ENV implicit
    ])
    b.production("line", ["instr"], functions=[
        ("line.LBLS", "empty$pf()"),
        ("line.CODE", "instr.CODE"),
    ])
    b.production("instr", ["ADD", "NUM"], functions=[
        ("instr.CODE", "cons(Pair('ADD', NUM.LEXVAL), empty$list())"),
    ])
    b.production("instr", ["JMP", "ID"], functions=[
        ("instr.CODE", "cons(Pair('JMP', EvalPF(instr.ENV, ID.TEXT)), empty$list())"),
    ])
    b.production("instr", ["HALT"], functions=[
        ("instr.CODE", "cons(Pair('HALT', 0), empty$list())"),
    ])
    return b.finish()


def scanner_spec() -> ScannerSpec:
    spec = ScannerSpec()
    spec.rule("WS", r"[ \t\r\n]+", skip=True)
    spec.rule("COMMENT", r";[^\n]*", skip=True)
    spec.rule("LABEL", r"[a-z][a-z0-9]*:", intern=True)
    spec.rule("ID", r"[a-z][a-z0-9]*", intern=True)
    spec.rule("NUM", r"\d+")
    spec.keyword_kinds = {"ID"}
    spec.keywords.update({"add": "ADD", "jmp": "JMP", "halt": "HALT"})
    return spec


PROGRAM = """\
start:  add 1
        jmp end      ; forward reference
        add 2
        jmp start    ; backward reference
end:    halt
"""


def main() -> None:
    ag = build_grammar()
    assignment = assign_passes(ag, Direction.R2L)
    print(render_pass_report(assignment))
    print()

    deadness = analyze_deadness(ag, assignment)
    allocation = choose_static_attributes(ag, assignment, SubsumptionConfig())
    plans = build_pass_plans(ag, assignment, deadness, allocation)
    generated = GeneratedEvaluator(ag, plans)

    # LABEL tokens include the trailing ':'; strip it via the intrinsic hook.
    from repro.apt.build import default_intrinsics

    def intrinsics(token, symbol, attr):
        value = default_intrinsics(token, symbol, attr)
        if symbol == "LABEL" and attr == "TEXT":
            return value.rstrip(":")
        return value

    scanner = scanner_spec().generate()
    parser = LALRParser(build_tables(ag.underlying_cfg()))
    spool = MemorySpool(channel="initial")
    builder = APTBuilder(ag, spool, intrinsic_fn=intrinsics)
    parser.parse(scanner.tokens(PROGRAM), listener=builder, build_tree=False)
    builder.finish()

    driver = AlternatingPassDriver(
        ag, plans, generated.executor, library=FunctionLibrary()
    )
    result = driver.run(spool, strategy="bottom-up")

    print("source:")
    for line in PROGRAM.splitlines():
        print("   ", line)
    print(f"\nassembled ({result['N']} instructions):")
    for addr, (op, arg) in enumerate(result["CODE"]):
        print(f"    {addr:3d}: {op} {arg}")

    code = list(result["CODE"])
    assert code[1] == ("JMP", 4), "forward reference must resolve to 'end'"
    assert code[3] == ("JMP", 0), "backward reference must resolve to 'start'"
    print("\nforward and backward references resolved correctly.")


if __name__ == "__main__":
    main()
