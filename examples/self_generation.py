#!/usr/bin/env python
"""Self-generation: LINGUIST processing its own attribute grammar.

"LINGUIST-86 is itself written as an 1800-line attribute grammar and is
self-generating."  Our ``linguist.ag`` describes the LINGUIST input
language and computes the dictionary — symbol table, attribute /
production / semantic-function / copy-rule counts, undeclared-symbol
diagnostics — in **four alternating passes**, the same pass count the
paper reports for the original.

The bootstrap: the hand-written system compiles ``linguist.ag`` into a
generated evaluator; that generated evaluator is then run **on
linguist.ag itself**, and its answers must equal a direct analysis of
the same file — the fixpoint that makes the system self-generating.

Run:  python examples/self_generation.py
"""

from repro.core.selfgen import SelfGeneration, summary_from_ast
from repro.frontend.syntax import parse_ag_text
from repro.grammars import load_source


def main() -> None:
    print("building the self-described translator from linguist.ag ...")
    selfgen = SelfGeneration()
    stats = selfgen.linguist.statistics
    print(stats.render())
    print()

    print("=== bootstrap: the generated evaluator processes its own source ===")
    machine, hand = selfgen.bootstrap_check()
    rows = [
        ("grammar symbols", machine.n_syms, hand.n_syms),
        ("attributes", machine.n_attrs, hand.n_attrs),
        ("productions", machine.n_prods, hand.n_prods),
        ("explicit semantic functions", machine.n_funcs, hand.n_funcs),
        ("explicit copy-rules", machine.n_copies, hand.n_copies),
        ("diagnostics", machine.n_msgs, hand.n_msgs),
    ]
    print(f"    {'dictionary entry':<30} {'generated':>10} {'direct':>10}")
    for label, m, h in rows:
        mark = "ok" if m == h else "MISMATCH"
        print(f"    {label:<30} {m:>10} {h:>10}   {mark}")
    print(f"    symbol sets equal: {machine.symbols == hand.symbols}")
    print(f"    pass-4 cross-check (N$CHECK == N$PRODS): "
          f"{selfgen.check_consistency_attr()}")
    print()

    print("=== the generated evaluator analyzing the other shipped grammars ===")
    for name in ("binary", "calc", "pascal"):
        source = load_source(name)
        machine = selfgen.analyze_with_generated_evaluator(source)
        hand = summary_from_ast(parse_ag_text(source))
        agree = (machine.n_prods, machine.n_funcs) == (hand.n_prods, hand.n_funcs)
        print(f"    {name:>8}.ag: {machine.n_prods} productions, "
              f"{machine.n_funcs} functions, {machine.n_copies} copy-rules "
              f"-> agreement: {agree}")

    print()
    print("=== the generated evaluator catching errors ===")
    broken = load_source("binary").replace(
        "nonterminal number, bits, bit ;", "nonterminal number, bits ;"
    )
    result = selfgen.translator.translate(broken)
    for line, message, name in result["MSGS"]:
        print(f"    line {line}: {message} ({name})")


if __name__ == "__main__":
    main()
