#!/usr/bin/env python
"""A desk calculator with let-bindings, generated from ``calc.ag``.

Demonstrates the evaluation paradigm itself: the environment threads
left-to-right through the statement list, so under the bottom-up
strategy (first pass right-to-left — the one LINGUIST-86 itself uses)
the grammar needs **two alternating passes**, and you can watch the APT
stream through the intermediate files in both directions.

The example builds its Linguist with ``fuse_passes=False`` to keep both
passes visible; by default pass fusion merges them into a single
left-to-right traversal (zero intermediate files — see
``repro.passes.fusion`` and docs/performance.md).

Run:  python examples/desk_calculator.py
"""

from repro.core import Linguist
from repro.evalgen.runtime import TraceEvent
from repro.grammars import load_source
from repro.grammars.scanners import calc_scanner_spec

PROGRAM = """\
let x = 6 ;
let y = x * 7 ;
print y ;
let z = y - x * 2 ;
print z + 100 ;
print (x + y) * 2
"""


def main() -> None:
    linguist = Linguist(load_source("calc"), fuse_passes=False)
    print(f"calc.ag needs {linguist.n_passes} alternating passes "
          f"(first pass {linguist.assignment.direction(1).value})")
    for k in range(1, linguist.n_passes + 1):
        attrs = linguist.assignment.attributes_of_pass(k)
        names = ", ".join(f"{s}.{a}" for s, a in attrs)
        print(f"  pass {k} ({linguist.assignment.direction(k).value}): {names}")
    print()

    translator = linguist.make_translator(calc_scanner_spec())
    print("program:")
    for line in PROGRAM.splitlines():
        print("   ", line)
    result = translator.translate(PROGRAM)
    print("\nprinted values:", list(result["OUT"]))

    # Peek at the paradigm: trace one evaluation.
    from repro.apt.storage import MemorySpool
    from repro.evalgen.driver import AlternatingPassDriver
    from repro.evalgen.interp import InterpretiveEvaluator
    from repro.apt.build import APTBuilder

    trace = []
    spool = MemorySpool(channel="initial")
    builder = APTBuilder(linguist.ag, spool)
    translator.parser.parse(
        translator.scanner.tokens("let a = 1 ; print a"),
        listener=builder, build_tree=False,
    )
    builder.finish()
    driver = AlternatingPassDriver(
        linguist.ag, linguist.plans,
        InterpretiveEvaluator(linguist.ag).run_pass,
        library=translator.library, trace=trace,
    )
    driver.run(spool, strategy="bottom-up")
    print("\nfirst 18 paradigm events of the evaluation "
          "(get = read node from file, put = write back):")
    for event in trace[:18]:
        print("   ", event)

    io = driver.accountant
    print(f"\nI/O: {io.records_read} records read, {io.records_written} "
          f"written across {linguist.n_passes} passes "
          f"({io.total_bytes} bytes total)")


if __name__ == "__main__":
    main()
