#!/usr/bin/env python
"""Quickstart: from an attribute grammar to a running translator.

This walks the full LINGUIST-86 pipeline on Knuth's binary-number
grammar (the field's canonical example, shipped as ``binary.ag``):

1. feed the ``.ag`` source to :class:`repro.core.Linguist` — it parses,
   validates (inserting implicit copy-rules), checks noncircularity,
   assigns alternating passes, runs the dead-attribute and static-
   subsumption analyses, and generates one evaluator module per pass;
2. package scanner + LALR tables + generated evaluator into a
   :class:`Translator`;
3. translate inputs: the APT streams through intermediate files, read
   backwards between passes, and the answer appears as a synthesized
   attribute of the root.

Run:  python examples/quickstart.py
"""

from repro.core import Linguist
from repro.grammars import load_source
from repro.grammars.scanners import binary_scanner_spec


def main() -> None:
    source = load_source("binary")
    print("=== the attribute grammar (binary.ag) ===")
    print("\n".join(source.splitlines()[:14]))
    print("    ... ({} lines total)\n".format(len(source.splitlines())))

    # Overlay pipeline: .ag source -> analyses -> generated evaluators.
    linguist = Linguist(source)
    print("=== analysis ===")
    print(linguist.statistics.render())
    print()
    print("overlay times:")
    print(linguist.overlay_times.render())
    print()

    # The generated evaluator for pass 1, as the paper prints it.
    print("=== generated production-procedures (pass 1, Pascal) ===")
    pascal_src = linguist.pascal_artifacts[0].text
    print("\n".join(pascal_src.splitlines()[:24]))
    print("    ...\n")

    # Package and run the translator.
    translator = linguist.make_translator(binary_scanner_spec())
    for numeral in ("101.01", "1101.101", "0.0001", "11111111.1"):
        result = translator.translate(numeral)
        print(f"value of {numeral:>12}  =  {result['VAL']}")

    driver = translator.last_driver
    print()
    print(
        f"evaluated in {len(driver.pass_times)} alternating passes; "
        f"{driver.accountant.records_read} node records read, "
        f"{driver.accountant.records_written} written; "
        f"peak resident APT: {driver.gauge.peak_bytes} bytes"
    )


if __name__ == "__main__":
    main()
