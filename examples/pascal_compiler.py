#!/usr/bin/env python
"""A Pascal-subset compiler front end, generated from ``pascal.ag``.

The paper's second workload: "We have also timed LINGUIST-86 processing
our attribute grammar for Pascal."  This example builds the generated
front end (scope analysis, type checking, stack-code synthesis), runs
it on a correct program and on an erroneous one, and cross-checks the
output against the hand-written one-pass compiler
(:mod:`repro.baseline`) — the stand-in for "the host system's
translator products".

Run:  python examples/pascal_compiler.py
"""

from repro.baseline import HandPascalCompiler
from repro.core import Linguist
from repro.grammars import library_for, load_source
from repro.grammars.scanners import pascal_scanner_spec

GOOD_PROGRAM = """\
program squares;
var i, total : integer; run : boolean;
begin
  i := 10;
  total := 0;
  run := true;
  while run do
  begin
    total := total + i * i;
    i := i - 1;
    run := i > 0
  end;
  writeln(total)
end.
"""

BAD_PROGRAM = """\
program broken;
var a : integer; f : boolean;
begin
  a := true;
  ghost := 1;
  if a then writeln(1) else writeln(2);
  while f do a := a + f
end.
"""


def main() -> None:
    linguist = Linguist(load_source("pascal"))
    print(f"pascal.ag: {linguist.statistics.n_productions} productions, "
          f"{linguist.statistics.n_semantic_functions} semantic functions "
          f"({linguist.statistics.copy_rule_percent:.0f}% copy-rules), "
          f"{linguist.n_passes} alternating passes")
    print(f"static subsumption allocated {len(linguist.allocation)} attributes "
          f"to {len(linguist.allocation.groups())} global variables; "
          f"{sum(p.n_subsumed for p in linguist.plans)} copy-rules subsumed\n")

    translator = linguist.make_translator(
        pascal_scanner_spec(), library=library_for("pascal")
    )

    print("=== compiling a correct program ===")
    result = translator.translate(GOOD_PROGRAM)
    assert not list(result["MSGS"])
    for instr in result["CODE"]:
        print("   ", instr)

    print("\n=== compiling a program with errors ===")
    result = translator.translate(BAD_PROGRAM)
    for line, message, name in result["MSGS"]:
        where = f" ({name})" if name else ""
        print(f"    line {line}: {message}{where}")

    print("\n=== cross-check against the hand-written compiler ===")
    hand = HandPascalCompiler()
    ag_code = list(translator.translate(GOOD_PROGRAM)["CODE"])
    hand_code = hand.compile(GOOD_PROGRAM).code
    print("    generated front end and hand compiler agree:",
          ag_code == hand_code)


if __name__ == "__main__":
    main()
