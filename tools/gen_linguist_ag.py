#!/usr/bin/env python
"""Regenerate ``src/repro/grammars/linguist.ag`` — the self-description.

The underlying CFG of linguist.ag must mirror
``repro.frontend.syntax._PRODUCTIONS`` exactly (it describes the same
input language the hand-written frontend parses).  This script derives
the productions section from that table and attaches the semantic
functions; the semantic content lives in the tables below.

Run:  python tools/gen_linguist_ag.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.frontend.syntax import _PRODUCTIONS  # noqa: E402

TERMINALS = [
    "GRAMMAR", "SYMBOLS", "ATTRIBUTES", "PRODUCTIONS", "END",
    "NONTERMINAL", "TERMINAL", "LIMB",
    "INHERITED", "SYNTHESIZED", "INTRINSIC", "LOCAL",
    "IF", "THEN", "ELSIF", "ELSE", "ENDIF",
    "AND", "OR", "NOT", "DIV", "TRUE", "FALSE",
    "IDENT", "NUMBER", "STRING",
    "ARROW", "NE", "LE", "GE", "LT", "GT", "EQ",
    "PLUS", "MINUS", "STAR", "LPAREN", "RPAREN",
    "COMMA", "SEMI", "COLON", "DOT",
]

NONTERMINALS = sorted({lhs for _, lhs, _ in _PRODUCTIONS})

ATTR_DECLS = """\
  file      : synthesized N$SYMS int, synthesized N$ATTRS int,
              synthesized N$PRODS int, synthesized N$FUNCS int,
              synthesized N$COPIES int, synthesized N$CHECK int,
              synthesized MSGS list, synthesized SYMS set,
              synthesized N$OCCS int ;
  symdecls  : synthesized SYMS set ;
  symdecl   : synthesized SYMS set ;
  symkind   : synthesized KIND$NAME typ ;
  identlist : synthesized NAMES list ;
  attrdecls : inherited SYMS set, synthesized N$ATTRS int,
              synthesized ATTRS$PF pf, synthesized MSGS list ;
  attrdecl  : inherited SYMS set, synthesized N$ATTRS int,
              synthesized ATTRS$PF pf, synthesized MSGS list ;
  attrspecs : synthesized SPECS list ;
  attrspec  : synthesized SPEC typ ;
  akind     : synthesized KIND$NAME typ ;
  prodlist  : inherited SYMS set, inherited ATTRS$PF pf,
              inherited MSG$NO int,
              inherited TOTAL$MSGS int, inherited REPORTS$IN list,
              synthesized N$PRODS int, synthesized N$FUNCS int,
              synthesized N$COPIES int, synthesized MSGS list,
              synthesized MSG$NO$OUT int, synthesized REPORT$LIST list,
              synthesized N$CHECK int, synthesized N$OCCS int ;
  production : inherited SYMS set, inherited ATTRS$PF pf,
              inherited MSG$NO int,
              inherited TOTAL$MSGS int, inherited REPORTS$IN list,
              synthesized N$FUNCS int, synthesized N$COPIES int,
              synthesized MSGS list, synthesized MSG$NO$OUT int,
              synthesized REPORT typ, synthesized N$CHECK int,
              synthesized N$OCCS int ;
  header    : inherited SYMS set, inherited ATTRS$PF pf,
              synthesized LHS$NAME string, synthesized LIMB$NAME string,
              synthesized MSGS list, synthesized N$OCCS int ;
  symseq    : inherited SYMS set, inherited ATTRS$PF pf,
              synthesized N int, synthesized MSGS list,
              synthesized N$OCCS int ;
  funclist  : synthesized N$FUNCS int, synthesized N$COPIES int ;
  semfn     : synthesized IS$COPY bool ;
  exprtop   : synthesized IS$REF bool ;
  simple    : synthesized IS$REF bool ;
  disj      : synthesized IS$REF bool ;
  conj      : synthesized IS$REF bool ;
  cmp       : synthesized IS$REF bool ;
  add       : synthesized IS$REF bool ;
  mul       : synthesized IS$REF bool ;
  unary     : synthesized IS$REF bool ;
  primary   : synthesized IS$REF bool ;
  IDENT     : intrinsic TEXT string, intrinsic LINE int ;
  FileLb    : local ERR list ;
  AttrDeclLb : local ERR list ;
  HeaderLb  : local ERR list ;
  HeaderLimbLb : local ERR list, local ERR2 list ;
  HeaderEmptyLb : local ERR list ;
  HeaderEmptyLimbLb : local ERR list, local ERR2 list ;
  SymSeqManyLb : local ERR list ;
  SymSeqOneLb : local ERR list ;
"""

#: tag -> (limb name, [semantic function text]); productions not listed
#: carry only implicit copy-rules (and no limb), exactly the style the
#: paper reports (most copy-rules implicit).
SEMANTICS = {
    "File": ("FileLb", [
        "attrdecls.SYMS = symdecls.SYMS",
        "prodlist.SYMS = symdecls.SYMS",
        "prodlist.ATTRS$PF = attrdecls.ATTRS$PF",
        "prodlist.MSG$NO = 0",
        "prodlist.TOTAL$MSGS = prodlist.MSG$NO$OUT",
        "prodlist.REPORTS$IN = prodlist.REPORT$LIST",
        "ERR = if HasSymbol(symdecls.SYMS, IDENT1.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT1.LINE, 'start symbol not declared',\n"
        "                      IDENT1.TEXT, null$msg$list())\n"
        "        endif",
        "file.MSGS = merge$msgs(ERR, merge$msgs(attrdecls.MSGS, prodlist.MSGS))",
        "file.N$SYMS = SizeOf(symdecls.SYMS)",
        "file.SYMS = symdecls.SYMS",
    ]),
    "SymMany": ("", [
        "symdecls0.SYMS = union(symdecls1.SYMS, symdecl.SYMS)",
    ]),
    "SymDecl": ("SymDeclLb", [
        "symdecl.SYMS = MakeSyms(identlist.NAMES, symkind.KIND$NAME)",
    ]),
    "KindNonterminal": ("", ["symkind.KIND$NAME = nonterminal$k"]),
    "KindTerminal": ("", ["symkind.KIND$NAME = terminal$k"]),
    "KindLimb": ("", ["symkind.KIND$NAME = limb$k"]),
    "IdentMany": ("", [
        "identlist0.NAMES = cons(IDENT.TEXT, identlist1.NAMES)",
    ]),
    "IdentOne": ("", [
        "identlist.NAMES = cons(IDENT.TEXT, empty$list())",
    ]),
    "AttrNone": ("", [
        "attrdecls.N$ATTRS = 0",
        "attrdecls.ATTRS$PF = empty$pf()",
        "attrdecls.MSGS = null$msg$list()",
    ]),
    "AttrMany": ("", [
        "attrdecls0.N$ATTRS = attrdecls1.N$ATTRS + attrdecl.N$ATTRS",
        "attrdecls0.ATTRS$PF = JoinPF(attrdecls1.ATTRS$PF, attrdecl.ATTRS$PF)",
        "attrdecls0.MSGS = merge$msgs(attrdecls1.MSGS, attrdecl.MSGS)",
    ]),
    "AttrDecl": ("AttrDeclLb", [
        "attrdecl.N$ATTRS = Length(attrspecs.SPECS)",
        "attrdecl.ATTRS$PF = consPF(IDENT.TEXT, Length(attrspecs.SPECS), empty$pf())",
        "ERR = if HasSymbol(attrdecl.SYMS, IDENT.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT.LINE, 'attributes declared for unknown symbol',\n"
        "                      IDENT.TEXT, null$msg$list())\n"
        "        endif",
        "attrdecl.MSGS = ERR",
    ]),
    "SpecMany": ("", [
        "attrspecs0.SPECS = cons(attrspec.SPEC, attrspecs1.SPECS)",
    ]),
    "SpecOne": ("", [
        "attrspecs.SPECS = cons(attrspec.SPEC, empty$list())",
    ]),
    "AttrSpec": ("", [
        "attrspec.SPEC = Spec3(akind.KIND$NAME, IDENT0.TEXT, IDENT1.TEXT)",
    ]),
    "KindInherited": ("", ["akind.KIND$NAME = inherited$k"]),
    "KindSynthesized": ("", ["akind.KIND$NAME = synthesized$k"]),
    "KindIntrinsic": ("", ["akind.KIND$NAME = intrinsic$k"]),
    "KindLocal": ("", ["akind.KIND$NAME = local$k"]),
    "ProdMany": ("ProdManyLb", [
        "production.MSG$NO = prodlist1.MSG$NO$OUT",
        "prodlist0.MSG$NO$OUT = production.MSG$NO$OUT",
        "prodlist0.N$PRODS = prodlist1.N$PRODS + 1",
        "prodlist0.N$FUNCS = prodlist1.N$FUNCS + production.N$FUNCS",
        "prodlist0.N$COPIES = prodlist1.N$COPIES + production.N$COPIES",
        "prodlist0.MSGS = merge$msgs(prodlist1.MSGS, production.MSGS)",
        "prodlist0.REPORT$LIST = cons(production.REPORT, prodlist1.REPORT$LIST)",
        "prodlist0.N$CHECK = prodlist1.N$CHECK + production.N$CHECK",
        "prodlist0.N$OCCS = prodlist1.N$OCCS + production.N$OCCS",
    ]),
    "ProdOne": ("", [
        "prodlist.N$PRODS = 1",
        "prodlist.REPORT$LIST = cons(production.REPORT, empty$list())",
    ]),
    "ProdBare": ("ProdBareLb", [
        "production.N$FUNCS = 0",
        "production.N$COPIES = 0",
        "production.MSG$NO$OUT = production.MSG$NO + Length(header.MSGS)",
        "production.REPORT = Report3(header.LHS$NAME, production.TOTAL$MSGS, 0)",
        "production.N$CHECK = IncrIfTrue(Length(production.REPORTS$IN) > 0, 0)",
    ]),
    "ProdFuncs": ("ProdFuncsLb", [
        "production.MSG$NO$OUT = production.MSG$NO + Length(header.MSGS)",
        "production.REPORT = Report3(header.LHS$NAME, production.TOTAL$MSGS,\n"
        "                            funclist.N$FUNCS)",
        "production.N$CHECK = IncrIfTrue(Length(production.REPORTS$IN) > 0, 0)",
    ]),
    "Header": ("HeaderLb", [
        "header.LHS$NAME = StripSuffix(IDENT.TEXT)",
        "header.LIMB$NAME = no$limb",
        "ERR = if HasSymbol(header.SYMS, IDENT.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT.LINE, 'undeclared symbol', IDENT.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "header.MSGS = merge$msgs(ERR, symseq.MSGS)",
        "header.N$OCCS = symseq.N$OCCS + CountAttrs(header.ATTRS$PF, IDENT.TEXT)",
    ]),
    "HeaderLimb": ("HeaderLimbLb", [
        "header.LHS$NAME = StripSuffix(IDENT0.TEXT)",
        "header.LIMB$NAME = IDENT1.TEXT",
        "ERR = if HasSymbol(header.SYMS, IDENT0.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT0.LINE, 'undeclared symbol', IDENT0.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "ERR2 = if HasSymbol(header.SYMS, IDENT1.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT1.LINE, 'undeclared limb symbol', IDENT1.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "header.MSGS = merge$msgs(ERR, merge$msgs(ERR2, symseq.MSGS))",
        "header.N$OCCS = symseq.N$OCCS + CountAttrs(header.ATTRS$PF, IDENT0.TEXT)\n"
        "                + CountAttrs(header.ATTRS$PF, IDENT1.TEXT)",
    ]),
    "HeaderEmpty": ("HeaderEmptyLb", [
        "header.LHS$NAME = StripSuffix(IDENT.TEXT)",
        "header.LIMB$NAME = no$limb",
        "ERR = if HasSymbol(header.SYMS, IDENT.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT.LINE, 'undeclared symbol', IDENT.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "header.MSGS = ERR",
        "header.N$OCCS = CountAttrs(header.ATTRS$PF, IDENT.TEXT)",
    ]),
    "HeaderEmptyLimb": ("HeaderEmptyLimbLb", [
        "header.LHS$NAME = StripSuffix(IDENT0.TEXT)",
        "header.LIMB$NAME = IDENT1.TEXT",
        "ERR = if HasSymbol(header.SYMS, IDENT0.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT0.LINE, 'undeclared symbol', IDENT0.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "ERR2 = if HasSymbol(header.SYMS, IDENT1.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT1.LINE, 'undeclared limb symbol', IDENT1.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "header.MSGS = merge$msgs(ERR, ERR2)",
        "header.N$OCCS = CountAttrs(header.ATTRS$PF, IDENT0.TEXT)\n"
        "                + CountAttrs(header.ATTRS$PF, IDENT1.TEXT)",
    ]),
    "SymSeqMany": ("SymSeqManyLb", [
        "symseq0.N = symseq1.N + 1",
        "ERR = if HasSymbol(symseq0.SYMS, IDENT.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT.LINE, 'undeclared symbol', IDENT.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "symseq0.MSGS = merge$msgs(symseq1.MSGS, ERR)",
        "symseq0.N$OCCS = symseq1.N$OCCS + CountAttrs(symseq0.ATTRS$PF, IDENT.TEXT)",
    ]),
    "SymSeqOne": ("SymSeqOneLb", [
        "symseq.N = 1",
        "ERR = if HasSymbol(symseq.SYMS, IDENT.TEXT)\n"
        "        then null$msg$list()\n"
        "        else cons$msg(IDENT.LINE, 'undeclared symbol', IDENT.TEXT,\n"
        "                      null$msg$list())\n"
        "        endif",
        "symseq.MSGS = ERR",
        "symseq.N$OCCS = CountAttrs(symseq.ATTRS$PF, IDENT.TEXT)",
    ]),
    "FuncMany": ("FuncManyLb", [
        "funclist0.N$FUNCS = funclist1.N$FUNCS + 1",
        "funclist0.N$COPIES = IncrIfTrue(semfn.IS$COPY, funclist1.N$COPIES)",
    ]),
    "FuncOne": ("FuncOneLb", [
        "funclist.N$FUNCS = 1",
        "funclist.N$COPIES = IncrIfTrue(semfn.IS$COPY, 0)",
    ]),
    "SemFn": ("SemFnLb", [
        "semfn.IS$COPY = exprtop.IS$REF",
    ]),
    "ExprIf": ("", ["exprtop.IS$REF = false"]),
    "Or": ("", ["disj0.IS$REF = false"]),
    "And": ("", ["conj0.IS$REF = false"]),
    "Compare": ("", ["cmp.IS$REF = false"]),
    "Plus": ("", ["add0.IS$REF = false"]),
    "Minus": ("", ["add0.IS$REF = false"]),
    "Times": ("", ["mul0.IS$REF = false"]),
    "Divide": ("", ["mul0.IS$REF = false"]),
    "NotOp": ("", ["unary0.IS$REF = false"]),
    "NegOp": ("", ["unary0.IS$REF = false"]),
    "Number": ("", ["primary.IS$REF = false"]),
    "Str": ("", ["primary.IS$REF = false"]),
    "True": ("", ["primary.IS$REF = false"]),
    "False": ("", ["primary.IS$REF = false"]),
    "Name": ("", ["primary.IS$REF = false"]),
    "AttrRef": ("", ["primary.IS$REF = true"]),
    "Call0": ("", ["primary.IS$REF = false"]),
    "CallN": ("", ["primary.IS$REF = false"]),
}


def canonical_occurrence_names(lhs, rhs):
    """Replicate repro.ag.model occurrence naming for the header text."""
    all_syms = [lhs] + list(rhs)
    counts = {}
    for s in all_syms:
        counts[s] = counts.get(s, 0) + 1
    seen = {}
    names = []
    for s in all_syms:
        if counts[s] > 1:
            names.append(f"{s}{seen.get(s, 0)}")
            seen[s] = seen.get(s, 0) + 1
        else:
            names.append(s)
    return names[0], names[1:]


def emit():
    out = []
    out.append("""\
# The self-description: the LINGUIST input language, written as an
# attribute grammar for LINGUIST itself.  Its generated evaluator
# recomputes the dictionary — symbol table, attribute count, production
# and semantic-function counts, explicit-copy-rule count — plus
# undeclared-symbol diagnostics with source-order message numbering and
# a final cross-check pass.  Four alternating passes, first pass
# right-to-left, exactly the shape the paper reports for the original
# 1800-line grammar.
#
# GENERATED by tools/gen_linguist_ag.py from the frontend's production
# table so the phrase structure always matches the hand-written parser.
# Edit the generator, not this file.

grammar linguist : file .

symbols
""")
    out.append("  nonterminal " + ",\n              ".join(NONTERMINALS) + " ;")
    out.append("  terminal " + ",\n           ".join(TERMINALS) + " ;")
    limbs = sorted({limb for limb, _ in SEMANTICS.values() if limb})
    out.append("  limb " + ",\n       ".join(limbs) + " ;")
    out.append("")
    out.append("attributes")
    out.append(ATTR_DECLS)
    out.append("productions")
    out.append("")
    for tag, lhs, rhs in _PRODUCTIONS:
        limb, funcs = SEMANTICS.get(tag, ("", []))
        lhs_name, rhs_names = canonical_occurrence_names(lhs, rhs)
        head = f"{lhs_name} = {' '.join(rhs_names)}".rstrip()
        if limb:
            head += f" -> {limb}"
        head += " ."
        out.append(f"# {tag}")
        out.append(head)
        if funcs:
            body = " ,\n  ".join(funcs)
            out.append("  " + body + " ;")
        else:
            out.append("  ;")
        out.append("")
    out.append("end")
    return "\n".join(out) + "\n"


if __name__ == "__main__":
    path = os.path.join(
        os.path.dirname(__file__), "..", "src", "repro", "grammars", "linguist.ag"
    )
    text = emit()
    with open(path, "w") as f:
        f.write(text)
    print(f"wrote {path}: {len(text.splitlines())} lines")
