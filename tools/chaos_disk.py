#!/usr/bin/env python
"""chaos-disk: drive a live serve daemon through a disk-exhaustion cycle.

The CI job (and anyone locally) runs this against a real ``repro serve``
subprocess to prove the resource-governance story end to end:

1. start the daemon with watermarks armed, serve a batch of requests;
2. "fill the disk" — the ``REPRO_FAKE_DISK_FREE=@file`` indirection lets
   this driver rewrite the daemon's free-space probe while it runs —
   and verify the daemon degrades: ``/healthz`` stays 200 but reports
   ``degraded`` + ``low-disk``, ``/translate`` answers 503 with a
   ``Retry-After`` header, and the journal suspends;
3. "free the disk" and verify automatic recovery: requests flow again;
4. drain with SIGTERM, then run ``repro doctor --repair`` and
   ``repro fsck`` over the artifacts and replay the journal, asserting
   zero lost and zero duplicated completions — every 200 the clients
   saw is durably journaled, and the suspension is covered by an
   explicit gap marker that lost nothing.

Usage: PYTHONPATH=src python tools/chaos_disk.py [WORKDIR]
Exits non-zero with a diagnostic on any violated invariant.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.journal import (  # noqa: E402
    journal_path,
    replay_journal,
    scan_journal,
)
from repro.workloads import generate_calc_program  # noqa: E402

BIG_FREE = 100 * (1 << 20)  # "plenty of disk"
TINY_FREE = 200 * 1024      # far below the 1 MiB low watermark
PHASE_A = 12                # requests before the fill
PHASE_C = 8                 # requests after recovery


def fail(msg):
    print(f"chaos-disk: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def post(port, text, timeout=60):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/translate",
        data=text.encode(), method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.read()


def healthz(port):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=10
    ) as resp:
        return resp.status, json.load(resp)


def wait_for_status(port, want, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = healthz(port)
        if body["status"] == want:
            return body
        time.sleep(0.05)
    fail(f"daemon never reached status {want!r} "
         f"(last: {healthz(port)[1]['status']!r})")


def main():
    workdir = sys.argv[1] if len(sys.argv) > 1 else "chaos-disk-work"
    os.makedirs(workdir, exist_ok=True)
    journal_dir = os.path.join(workdir, "journal")
    cache_dir = os.path.join(workdir, "cache")
    knob = os.path.join(workdir, "fake_free.txt")
    with open(knob, "w") as f:
        f.write(str(BIG_FREE))

    env = dict(
        os.environ,
        PYTHONPATH="src",
        REPRO_FAKE_DISK_FREE="@" + knob,
    )
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "src/repro/grammars/calc.ag", "--port", "0", "--workers", "2",
         "--journal", journal_dir, "--cache-dir", cache_dir,
         "--disk-low-mb", "1", "--disk-high-mb", "2",
         "--cache-max-mb", "64", "--governance-interval", "0.05"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    port = None
    while port is None:
        line = daemon.stdout.readline()
        if not line:
            fail("daemon exited during startup")
        sys.stdout.write(line)
        m = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if m:
            port = int(m.group(1))
    threading.Thread(
        target=lambda: [sys.stdout.write(l) for l in daemon.stdout],
        daemon=True,
    ).start()

    completions = 0
    try:
        # Phase A — healthy daemon under load.
        for i in range(PHASE_A):
            body = post(port, generate_calc_program(5 + i % 4, seed=900 + i))
            if not body:
                fail(f"phase A request {i} returned an empty body")
            completions += 1
        status, health = healthz(port)
        if status != 200 or health["status"] != "ok":
            fail(f"expected healthy daemon after phase A, got {health}")
        print(f"phase A: {PHASE_A} requests served while healthy")

        # Phase B — fill the disk; the daemon must degrade, not die.
        with open(knob, "w") as f:
            f.write(str(TINY_FREE))
        health = wait_for_status(port, "degraded")
        status, health = healthz(port)
        if status != 200:
            fail(f"/healthz must stay 200 while degraded, got {status}")
        reasons = next(iter(health["grammars"].values()))["reasons"]
        if "low-disk" not in reasons:
            fail(f"expected low-disk reason, got {reasons}")
        if not health["journal"]["suspended"]:
            fail("journal not suspended while degraded")
        try:
            post(port, "let a = 1 ; print a", timeout=10)
            fail("degraded daemon accepted a request")
        except urllib.error.HTTPError as exc:
            if exc.code != 503:
                fail(f"expected 503 while degraded, got {exc.code}")
            if not exc.headers.get("Retry-After"):
                fail("503 while degraded carried no Retry-After header")
        print("phase B: disk filled -> degraded, 503 + Retry-After, "
              "journal suspended, /healthz still 200")

        # Phase C — free the disk; the daemon must recover on its own.
        with open(knob, "w") as f:
            f.write(str(BIG_FREE))
        wait_for_status(port, "ok")
        for i in range(PHASE_C):
            post(port, generate_calc_program(5 + i % 4, seed=950 + i))
            completions += 1
        print(f"phase C: disk freed -> recovered, {PHASE_C} more served")

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/stats", timeout=10
        ) as resp:
            stats = json.load(resp)
        if stats.get("governance.serve_degraded", 0) < 1:
            fail(f"governance.serve_degraded missing from stats: {stats}")
        if stats.get("governance.serve_recovered", 0) < 1:
            fail(f"governance.serve_recovered missing from stats: {stats}")
    finally:
        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=60)
    if rc != 0:
        fail(f"daemon exited {rc} after SIGTERM drain")

    # Post-mortem: doctor, fsck, and journal replay must all agree that
    # nothing was lost and nothing was duplicated.
    doctor = subprocess.run(
        [sys.executable, "-m", "repro.cli", "doctor",
         journal_dir, cache_dir, "--repair"],
        env=dict(os.environ, PYTHONPATH="src"),
    )
    if doctor.returncode != 0:
        fail(f"doctor --repair exited {doctor.returncode} on a cleanly "
             "drained daemon's artifacts")
    fsck = subprocess.run(
        [sys.executable, "-m", "repro.cli", "fsck",
         journal_path(journal_dir)],
        env=dict(os.environ, PYTHONPATH="src"),
    )
    if fsck.returncode != 0:
        fail(f"fsck exited {fsck.returncode} on the drained journal")

    scan = scan_journal(journal_path(journal_dir))
    if not (scan.ok and scan.sealed):
        fail(f"journal not clean+sealed after drain: {scan}")
    if scan.gaps < 1:
        fail("expected at least one gap marker from the suspension")
    if scan.lost_records != 0:
        fail(f"gap markers admit {scan.lost_records} lost records; "
             "no request was in flight during the suspension")
    state = replay_journal(journal_dir)
    if state.duplicates:
        fail(f"duplicated completions: {state.duplicates}")
    if state.in_flight:
        fail(f"requests lost in flight: {state.in_flight}")
    if len(state.completed) != completions:
        fail(f"journal shows {len(state.completed)} completions, "
             f"clients saw {completions}")
    print(f"chaos-disk clean: {completions} completions journaled "
          f"(0 lost, 0 duplicated), {scan.gaps} gap marker(s) covering "
          "the suspension, doctor and fsck both green")


if __name__ == "__main__":
    main()
